//! The block DAG `G ∈ Dags` (Definition 3.4).
//!
//! A block DAG is a directed acyclic graph whose vertices are *valid* blocks
//! and whose edges are exactly the predecessor references: if
//! `B ∈ B'.preds` then `B ∈ G` and `(B, B') ∈ E`. Insertion follows the
//! restrictive Definition 2.1 — a new block may only be inserted when all
//! its predecessors are already present, which makes the DAG acyclic *by
//! construction* (Lemma 2.2 (3), Lemma A.3) and insertion idempotent
//! (Lemma A.2).
//!
//! The structure additionally maintains the per-server chain index used to
//! detect equivocations (two valid blocks by the same builder with the same
//! sequence number — Figure 3).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use dagbft_crypto::ServerId;

use crate::block::{Block, BlockRef, SeqNum};
use crate::error::DagError;

/// A server's local block DAG.
///
/// # Examples
///
/// ```
/// use dagbft_core::{Block, BlockDag, SeqNum};
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 3);
/// let signer = registry.signer(ServerId::new(0)).unwrap();
/// let genesis = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
///
/// let mut dag = BlockDag::new();
/// assert!(dag.insert(genesis.clone())?);
/// assert!(!dag.insert(genesis)?); // idempotent (Lemma A.2)
/// assert_eq!(dag.len(), 1);
/// # Ok::<(), dagbft_core::DagError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockDag {
    blocks: HashMap<BlockRef, Block>,
    /// Successor adjacency: `r → { r' | r ∈ r'.preds }`.
    children: HashMap<BlockRef, BTreeSet<BlockRef>>,
    /// Insertion order; a topological order by construction.
    order: Vec<BlockRef>,
    /// Per-server chains: `n → k → refs` (more than one ref at a `k` is an
    /// equivocation).
    chains: HashMap<ServerId, BTreeMap<SeqNum, Vec<BlockRef>>>,
    edge_count: usize,
}

impl BlockDag {
    /// Creates the empty block DAG `∅`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks `|V_G|`.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` for the empty DAG.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of edges `|E_G|` (counting duplicate references once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `B ∈ G`.
    pub fn contains(&self, block: &BlockRef) -> bool {
        self.blocks.contains_key(block)
    }

    /// Looks up a block by reference.
    pub fn get(&self, block: &BlockRef) -> Option<&Block> {
        self.blocks.get(block)
    }

    /// Resolves `(builder, seq)` metadata for a reference, as needed by
    /// parent determination (Definition 3.3 (ii)).
    pub fn meta(&self, block: &BlockRef) -> Option<(ServerId, SeqNum)> {
        self.blocks.get(block).map(|b| (b.builder(), b.seq()))
    }

    /// Inserts a block whose predecessors are all present
    /// (`G.insert(B)` of Definition 3.4).
    ///
    /// Returns `Ok(true)` if the block was new, `Ok(false)` if it was
    /// already present (insertion is idempotent, Lemma A.2). Validity of the
    /// block itself (signature, parent rule) is the caller's concern — the
    /// [`crate::gossip::Gossip`] layer validates before inserting, mirroring
    /// the paper's separation between `valid(s, B)` and `G.insert(B)`.
    ///
    /// # Errors
    ///
    /// [`DagError::MissingPredecessors`] if any `B' ∈ B.preds` is absent;
    /// inserting anyway would violate Definition 3.4 (ii).
    pub fn insert(&mut self, block: Block) -> Result<bool, DagError> {
        let block_ref = block.block_ref();
        if self.contains(&block_ref) {
            return Ok(false);
        }
        let missing: Vec<BlockRef> = block
            .preds()
            .iter()
            .filter(|p| !self.contains(p))
            .copied()
            .collect();
        if !missing.is_empty() {
            return Err(DagError::MissingPredecessors {
                block: block_ref,
                missing,
            });
        }

        // Definition 2.1: add the vertex and only edges into it. The vertex
        // is fresh, so acyclicity is preserved (Lemma 2.2 (3)).
        let mut distinct_preds = BTreeSet::new();
        for pred in block.preds() {
            distinct_preds.insert(*pred);
        }
        for pred in &distinct_preds {
            self.children.entry(*pred).or_default().insert(block_ref);
        }
        self.edge_count += distinct_preds.len();
        self.children.entry(block_ref).or_default();
        self.chains
            .entry(block.builder())
            .or_default()
            .entry(block.seq())
            .or_default()
            .push(block_ref);
        self.order.push(block_ref);
        self.blocks.insert(block_ref, block);
        Ok(true)
    }

    /// Distinct predecessors of a block (duplicate references collapse to
    /// one edge).
    pub fn preds_of(&self, block: &BlockRef) -> Vec<BlockRef> {
        match self.blocks.get(block) {
            Some(b) => {
                let set: BTreeSet<BlockRef> = b.preds().iter().copied().collect();
                set.into_iter().collect()
            }
            None => Vec::new(),
        }
    }

    /// Blocks that reference `block` directly (`block ⇀ child`).
    pub fn children_of(&self, block: &BlockRef) -> impl Iterator<Item = &BlockRef> {
        self.children.get(block).into_iter().flatten()
    }

    /// Blocks in insertion order — a topological order, since every block is
    /// inserted after its predecessors.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.order.iter().map(move |r| &self.blocks[r])
    }

    /// References in insertion (topological) order.
    pub fn refs(&self) -> impl Iterator<Item = &BlockRef> {
        self.order.iter()
    }

    /// Blocks with no successors — the current frontier.
    pub fn tips(&self) -> Vec<BlockRef> {
        self.order
            .iter()
            .filter(|r| self.children.get(r).is_none_or(BTreeSet::is_empty))
            .copied()
            .collect()
    }

    /// Genesis blocks (`k = 0`) present in the DAG.
    pub fn genesis_blocks(&self) -> impl Iterator<Item = &Block> {
        self.iter().filter(|b| b.is_genesis())
    }

    /// `a ⇀⁺ b`: `b` is reachable from `a` along one or more edges.
    pub fn reaches(&self, a: &BlockRef, b: &BlockRef) -> bool {
        if !self.contains(a) || !self.contains(b) {
            return false;
        }
        let mut queue: VecDeque<BlockRef> = self.children_of(a).copied().collect();
        let mut seen: BTreeSet<BlockRef> = queue.iter().copied().collect();
        while let Some(current) = queue.pop_front() {
            if current == *b {
                return true;
            }
            for next in self.children_of(&current) {
                if seen.insert(*next) {
                    queue.push_back(*next);
                }
            }
        }
        false
    }

    /// `a ⇀* b`: reflexive-transitive reachability.
    pub fn reaches_reflexive(&self, a: &BlockRef, b: &BlockRef) -> bool {
        (a == b && self.contains(a)) || self.reaches(a, b)
    }

    /// All ancestors of `block` (blocks `B` with `B ⇀⁺ block`).
    pub fn ancestors(&self, block: &BlockRef) -> BTreeSet<BlockRef> {
        let mut result = BTreeSet::new();
        let mut queue: VecDeque<BlockRef> = self.preds_of(block).into();
        while let Some(current) = queue.pop_front() {
            if result.insert(current) {
                queue.extend(self.preds_of(&current));
            }
        }
        result
    }

    /// The subgraph relation `G ≤ G'` of §2.
    ///
    /// For content-addressed block DAGs the edge sets are functions of the
    /// member blocks, so `V ⊆ V'` already implies the edge conditions; this
    /// method still checks them, serving as an executable statement of the
    /// definition.
    pub fn le(&self, other: &BlockDag) -> bool {
        for r in self.refs() {
            if !other.contains(r) {
                return false;
            }
        }
        // Both edge sets are derived from identical block content, so
        // E = E' ∩ (V × V) reduces to: every edge of `other` between blocks
        // of `self` exists in `self` — guaranteed when both contain the same
        // blocks — and vice versa. Verify the non-trivial direction.
        for (pred, kids) in &other.children {
            if !self.contains(pred) {
                continue;
            }
            for kid in kids {
                if self.contains(kid) && !self.children[pred].contains(kid) {
                    return false;
                }
            }
        }
        true
    }

    /// The joint DAG `G ∪ G'` (§3): the union of vertices with the union of
    /// edges. Since edges are derived from block content, this is simply the
    /// union of block sets inserted in a valid order.
    pub fn union(&self, other: &BlockDag) -> BlockDag {
        let mut joined = self.clone();
        // Repeatedly insert blocks whose preds are satisfied; terminates
        // because `other` is itself a DAG in topological insertion order.
        for block in other.iter() {
            // Order guarantees preds already inserted.
            let _ = joined.insert(block.clone());
        }
        joined
    }

    /// Highest sequence number of a server's blocks, if any.
    pub fn height_of(&self, server: ServerId) -> Option<SeqNum> {
        self.chains
            .get(&server)
            .and_then(|chain| chain.keys().next_back())
            .copied()
    }

    /// Blocks built by `server` at sequence number `seq`.
    pub fn blocks_at(&self, server: ServerId, seq: SeqNum) -> &[BlockRef] {
        self.chains
            .get(&server)
            .and_then(|chain| chain.get(&seq))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Sequence numbers at which `server` has produced more than one valid
    /// block — proof of equivocation (Figure 3).
    pub fn equivocations(&self, server: ServerId) -> Vec<(SeqNum, Vec<BlockRef>)> {
        self.chains
            .get(&server)
            .map(|chain| {
                chain
                    .iter()
                    .filter(|(_, refs)| refs.len() > 1)
                    .map(|(seq, refs)| (*seq, refs.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All servers that have at least one block in the DAG.
    pub fn known_servers(&self) -> impl Iterator<Item = &ServerId> {
        self.chains.keys()
    }

    /// Verifies the structural invariants of Definition 3.4; used by tests
    /// and debug assertions.
    ///
    /// Checks that (a) every predecessor of every block is present with the
    /// corresponding edge, and (b) the graph is acyclic (every block was
    /// inserted after its predecessors, so insertion order witnesses a
    /// topological order).
    pub fn check_invariants(&self) -> bool {
        let mut position: HashMap<BlockRef, usize> = HashMap::new();
        for (index, r) in self.order.iter().enumerate() {
            position.insert(*r, index);
        }
        for block in self.iter() {
            let my_pos = position[&block.block_ref()];
            for pred in block.preds() {
                if !self.contains(pred) {
                    return false;
                }
                if !self.children[pred].contains(&block.block_ref()) {
                    return false;
                }
                if position[pred] >= my_pos {
                    return false; // would imply a cycle or bad order
                }
            }
        }
        true
    }

    /// Renders the DAG in Graphviz `dot` syntax, one rank per server —
    /// useful for visually comparing against the paper's Figures 2–4.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph blockdag {\n  rankdir=LR;\n");
        for block in self.iter() {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}/{}\"];\n",
                block.block_ref(),
                block.builder(),
                block.seq()
            ));
        }
        for block in self.iter() {
            for pred in self.preds_of(&block.block_ref()) {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", pred, block.block_ref()));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_crypto::{KeyRegistry, Signer};

    fn setup(n: usize) -> (KeyRegistry, Vec<Signer>) {
        let registry = KeyRegistry::generate(n, 5);
        let signers = (0..n)
            .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
            .collect();
        (registry, signers)
    }

    fn genesis(signer: &Signer) -> Block {
        Block::build(signer.id(), SeqNum::ZERO, vec![], vec![], signer)
    }

    /// Builds the paper's Figure 2: B1 = s1/k0, B2 = s2/k0,
    /// B3 = s1/k1 with preds [B1, B2].
    fn figure_2() -> (BlockDag, Block, Block, Block) {
        let (_, signers) = setup(2);
        let b1 = genesis(&signers[0]);
        let b2 = genesis(&signers[1]);
        let b3 = Block::build(
            signers[0].id(),
            SeqNum::new(1),
            vec![b1.block_ref(), b2.block_ref()],
            vec![],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        dag.insert(b1.clone()).unwrap();
        dag.insert(b2.clone()).unwrap();
        dag.insert(b3.clone()).unwrap();
        (dag, b1, b2, b3)
    }

    #[test]
    fn figure_2_structure() {
        let (dag, b1, b2, b3) = figure_2();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.edge_count(), 2);
        assert!(dag.reaches(&b1.block_ref(), &b3.block_ref()));
        assert!(dag.reaches(&b2.block_ref(), &b3.block_ref()));
        assert!(!dag.reaches(&b1.block_ref(), &b2.block_ref()));
        assert_eq!(dag.tips(), vec![b3.block_ref()]);
        assert!(dag.check_invariants());
        // parent(B3) = B1.
        let parent = b3.parent_via(|r| dag.meta(r)).unwrap();
        assert_eq!(parent, Some(b1.block_ref()));
    }

    #[test]
    fn figure_3_equivocation_detected() {
        let (dag, b1, b2, _b3) = figure_2();
        let (_, signers) = setup(2);
        // B4: same builder and seq as B3 but different content.
        let b4 = Block::build(
            signers[0].id(),
            SeqNum::new(1),
            vec![b1.block_ref(), b2.block_ref()],
            vec![crate::block::LabeledRequest::encode(
                crate::Label::new(1),
                &1u8,
            )],
            &signers[0],
        );
        let mut dag = dag;
        dag.insert(b4.clone()).unwrap();
        let equivocations = dag.equivocations(signers[0].id());
        assert_eq!(equivocations.len(), 1);
        assert_eq!(equivocations[0].0, SeqNum::new(1));
        assert_eq!(equivocations[0].1.len(), 2);
        assert!(dag.equivocations(signers[1].id()).is_empty());
    }

    #[test]
    fn insert_missing_preds_rejected() {
        let (_, signers) = setup(2);
        let b1 = genesis(&signers[0]);
        let b3 = Block::build(
            signers[0].id(),
            SeqNum::new(1),
            vec![b1.block_ref()],
            vec![],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        let err = dag.insert(b3).unwrap_err();
        assert!(matches!(err, DagError::MissingPredecessors { .. }));
    }

    #[test]
    fn insert_idempotent_lemma_a2() {
        let (_, signers) = setup(1);
        let b = genesis(&signers[0]);
        let mut dag = BlockDag::new();
        assert!(dag.insert(b.clone()).unwrap());
        let edges = dag.edge_count();
        let len = dag.len();
        assert!(!dag.insert(b).unwrap());
        assert_eq!(dag.len(), len);
        assert_eq!(dag.edge_count(), edges);
    }

    #[test]
    fn duplicate_references_collapse_to_one_edge() {
        let (_, signers) = setup(1);
        let b0 = genesis(&signers[0]);
        let b1 = Block::build(
            signers[0].id(),
            SeqNum::new(1),
            vec![b0.block_ref(), b0.block_ref(), b0.block_ref()],
            vec![],
            &signers[0],
        );
        let mut dag = BlockDag::new();
        dag.insert(b0.clone()).unwrap();
        dag.insert(b1.clone()).unwrap();
        assert_eq!(dag.edge_count(), 1);
        assert_eq!(dag.preds_of(&b1.block_ref()), vec![b0.block_ref()]);
    }

    #[test]
    fn ancestors_and_reachability() {
        let (dag, b1, b2, b3) = figure_2();
        let ancestors = dag.ancestors(&b3.block_ref());
        assert!(ancestors.contains(&b1.block_ref()));
        assert!(ancestors.contains(&b2.block_ref()));
        assert_eq!(ancestors.len(), 2);
        assert!(dag.reaches_reflexive(&b3.block_ref(), &b3.block_ref()));
        assert!(dag.ancestors(&b1.block_ref()).is_empty());
    }

    #[test]
    fn le_and_union_joint_dag() {
        let (dag_full, b1, _b2, _b3) = figure_2();
        let mut dag_partial = BlockDag::new();
        dag_partial
            .insert(dag_full.get(&b1.block_ref()).unwrap().clone())
            .unwrap();
        assert!(dag_partial.le(&dag_full));
        assert!(!dag_full.le(&dag_partial));

        let joined = dag_partial.union(&dag_full);
        assert_eq!(joined.len(), dag_full.len());
        assert!(dag_full.le(&joined));
        assert!(dag_partial.le(&joined));
        assert!(joined.check_invariants());
    }

    #[test]
    fn chains_and_height() {
        let (dag, _b1, _b2, b3) = figure_2();
        assert_eq!(dag.height_of(b3.builder()), Some(SeqNum::new(1)));
        assert_eq!(
            dag.blocks_at(b3.builder(), SeqNum::new(1)),
            &[b3.block_ref()]
        );
        assert_eq!(dag.height_of(ServerId::new(9)), None);
        assert!(dag.blocks_at(ServerId::new(9), SeqNum::ZERO).is_empty());
    }

    #[test]
    fn iteration_order_is_topological() {
        let (dag, ..) = figure_2();
        let mut seen = BTreeSet::new();
        for block in dag.iter() {
            for pred in block.preds() {
                assert!(seen.contains(pred), "pred before child");
            }
            seen.insert(block.block_ref());
        }
    }

    #[test]
    fn genesis_blocks_listed() {
        let (dag, b1, b2, _) = figure_2();
        let genesis_refs: BTreeSet<BlockRef> =
            dag.genesis_blocks().map(|b| b.block_ref()).collect();
        assert_eq!(
            genesis_refs,
            [b1.block_ref(), b2.block_ref()].into_iter().collect()
        );
    }

    #[test]
    fn dot_rendering_mentions_every_block() {
        let (dag, b1, b2, b3) = figure_2();
        let dot = dag.to_dot();
        for block in [&b1, &b2, &b3] {
            assert!(dot.contains(&block.block_ref().to_string()));
        }
        assert!(dot.contains("->"));
    }
}
