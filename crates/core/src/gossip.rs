//! Building the block DAG — Algorithm 1 of the paper.
//!
//! The networking component is deliberately simple: there is one core
//! message type, the block, plus the `FWD` request used to pull missing
//! predecessors from the server whose block referenced them
//! (lines 10–13). A correct server
//!
//! * buffers received blocks (`blks`, lines 4–5),
//! * promotes them into its DAG once valid (lines 6–9), appending a
//!   reference to each newly valid block to its *current block* `B`
//!   (line 8),
//! * serves `FWD` requests from its DAG (lines 12–13), and
//! * on `disseminate()` seals `B` with the pending user requests and its
//!   signature, sends it to everyone, and starts the next block with the
//!   parent reference (lines 14–18).
//!
//! The module is transport-agnostic: entry points consume [`NetMessage`]s
//! and return [`NetCommand`]s for the caller (simulator, tests, or a real
//! event loop) to execute. Time is passed in explicitly and is only used to
//! pace `FWD` retransmissions (the paper's timer `Δ_B'`).
//!
//! # Admission engines
//!
//! Buffered-block admission (the promotion of `blks` entries into `G`) has
//! three interchangeable engines, selected by [`AdmissionMode`]:
//!
//! * [`AdmissionMode::Index`] (the default) maintains a reverse
//!   dependency index — pending block → still-missing predecessors, missing
//!   predecessor → waiting blocks — so admitting a burst of `B` buffered
//!   blocks costs O(B · preds) map operations. Each *wave* of
//!   simultaneously ready blocks is signature-checked in one
//!   [`BatchVerifier`] pass over the cached `ref(B)` digests, amortizing
//!   the per-verification key setup (the paper's batch-signature economics,
//!   §4/E6).
//! * [`AdmissionMode::Parallel`] is the index engine with each wave's
//!   batched verification split across a fixed pool of worker threads
//!   over crossbeam channels. The split is synchronous — promotion waits
//!   for all verdicts — so it pays off only when waves are wide enough
//!   for multi-core verification to beat the single-threaded batch (per
//!   chunk dispatch costs a channel round-trip; on the narrow waves of
//!   chain-shaped bursts the `Index` engine is faster). Verdicts are
//!   reassembled in submission order before any state changes, so
//!   promotion order — and every byte that is later hashed and signed —
//!   is identical to the sequential engines regardless of worker
//!   scheduling.
//! * [`AdmissionMode::Scan`] is the paper-literal fixed-point rescan
//!   (O(pending²) on adversarial orderings) with one signature check per
//!   candidate, retained as the equivalence oracle: tests and the
//!   `report_wire`/`report_admission` benches drive all engines with
//!   identical hostile schedules and assert identical DAGs, promotion
//!   orders, stats, and `FWD` traffic.

use std::collections::{BTreeMap, BTreeSet};

use crossbeam::channel::{Receiver, Sender};
use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::{BatchVerifier, ServerId, SignedDigest, Signer, Verifier};

use crate::block::{Block, BlockRef, LabeledRequest, SeqNum};
use crate::dag::BlockDag;
use crate::error::InvalidBlockError;
use crate::TimeMs;

/// The messages servers exchange: blocks, and forward requests for missing
/// predecessor blocks (Algorithm 1).
///
/// Cloning is cheap by construction — a block is an `Arc`'d body with
/// cached wire bytes — so fanning one message out to `n − 1` peers never
/// deep-copies or re-encodes the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMessage {
    /// A block being disseminated (line 17) or forwarded (line 13).
    Block(Block),
    /// `FWD ref(B)`: "please send me block `B`" (line 11).
    FwdRequest(BlockRef),
}

impl NetMessage {
    /// Size of this message on the wire, in bytes. O(1): one discriminant
    /// byte plus the cached payload length — no encoding happens.
    pub fn wire_len(&self) -> usize {
        let (_, payload) = self.payload_view();
        1 + payload.len()
    }

    /// The message as `(discriminant, canonical payload bytes)` without
    /// encoding anything: blocks expose their cached wire image,
    /// references their digest bytes. Frame writers emit the discriminant
    /// byte followed by the payload verbatim — the zero-copy send path.
    pub fn payload_view(&self) -> (u8, &[u8]) {
        match self {
            NetMessage::Block(block) => (0, block.wire_bytes()),
            NetMessage::FwdRequest(block_ref) => (1, block_ref.as_bytes()),
        }
    }
}

impl WireEncode for NetMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        let (discriminant, payload) = self.payload_view();
        out.push(discriminant);
        out.extend_from_slice(payload);
    }
}

impl WireDecode for NetMessage {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(NetMessage::Block(Block::decode(reader)?)),
            1 => Ok(NetMessage::FwdRequest(BlockRef::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "NetMessage",
                value,
            }),
        }
    }
}

/// An instruction to the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetCommand {
    /// Send `message` to a single server.
    SendTo {
        /// The destination server.
        to: ServerId,
        /// The message to deliver.
        message: NetMessage,
    },
    /// Send `message` to every *other* server (line 17; the sender already
    /// holds the block).
    Broadcast {
        /// The message to deliver to all peers.
        message: NetMessage,
    },
}

/// Which engine admits buffered blocks into the DAG (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Reverse-dependency index with wave-batched signature verification:
    /// O(preds) bookkeeping per block, one `BatchVerifier` pass per ready
    /// wave.
    #[default]
    Index,
    /// The paper-literal full rescan, kept as the equivalence oracle.
    Scan,
    /// The index engine with wave verification split across a worker
    /// pool (`workers` threads, clamped to at least 1); wins over
    /// [`AdmissionMode::Index`] only on wide waves (see the module docs).
    /// Promotion order is byte-identical to the sequential engines.
    Parallel {
        /// Number of verification worker threads.
        workers: usize,
    },
}

impl AdmissionMode {
    /// Parallel admission with `workers` verification threads.
    pub fn parallel(workers: usize) -> Self {
        AdmissionMode::Parallel { workers }
    }
}

/// Configuration for the gossip layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Total number of servers `|Srvrs|`.
    pub n: usize,
    /// Minimum time between repeated `FWD` requests for the same block
    /// (the paper's per-block wait `Δ_B'`, informed by the round-trip time).
    pub fwd_retry_ms: TimeMs,
    /// The admission engine for buffered blocks.
    pub admission: AdmissionMode,
}

impl GossipConfig {
    /// Configuration for `n` servers with the default 100 ms `FWD` retry
    /// and incremental admission.
    pub fn for_n(n: usize) -> Self {
        GossipConfig {
            n,
            fwd_retry_ms: 100,
            admission: AdmissionMode::default(),
        }
    }

    /// Selects the admission engine.
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }
}

/// Counters describing a gossip instance's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Blocks received from the network (before dedup).
    pub blocks_received: u64,
    /// Received blocks already present in the DAG or the pending buffer.
    pub duplicate_blocks: u64,
    /// Blocks rejected by the validity checks of Definition 3.3.
    pub invalid_blocks: u64,
    /// Blocks from other servers promoted into the DAG.
    pub blocks_validated: u64,
    /// Own blocks built and disseminated.
    pub blocks_built: u64,
    /// `FWD` requests sent.
    pub fwd_sent: u64,
    /// `FWD` requests received from peers.
    pub fwd_received: u64,
    /// Blocks re-sent in answer to `FWD` requests.
    pub fwd_answered: u64,
    /// Peak size of the pending (`blks`) buffer.
    pub pending_peak: usize,
}

/// State of an outstanding forward request for one missing block.
#[derive(Debug, Clone)]
struct FwdState {
    /// Builders of pending blocks that reference the missing block — the
    /// servers Algorithm 1 line 11 directs requests to.
    candidates: BTreeSet<ServerId>,
    /// When the last `FWD` was sent, if any.
    last_sent: Option<TimeMs>,
    /// Number of requests sent so far (used to rotate candidates).
    attempts: u32,
}

/// A buffered, not-yet-valid block plus its admission bookkeeping.
#[derive(Debug, Clone)]
struct PendingBlock {
    block: Block,
    /// Predecessors not yet in the DAG (maintained by the index engines;
    /// the scan engine recomputes promotability from the DAG).
    missing: BTreeSet<BlockRef>,
}

/// Counters for the wave-batched verification pipeline (index engines
/// only; the scan oracle verifies per candidate and leaves these zero).
///
/// Deliberately *not* part of [`GossipStats`]: that struct is asserted
/// equal across admission engines by the equivalence tests, and waves are
/// an implementation property of the batched engines, not an observable
/// of Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Verification waves batched so far.
    pub waves: u64,
    /// Blocks signature-checked through batched waves.
    pub batched_blocks: u64,
    /// Size of the largest wave.
    pub largest_wave: usize,
}

impl WaveStats {
    fn record(&mut self, wave: usize) {
        self.waves += 1;
        self.batched_blocks += wave as u64;
        self.largest_wave = self.largest_wave.max(wave);
    }
}

/// A verification chunk sent to the worker pool: `(slot, items)`.
type VerifyJob = (usize, Vec<SignedDigest>);
/// A worker's verdicts for one chunk: `(slot, per-item results)`.
type VerifyVerdicts = (usize, Vec<bool>);

/// A fixed pool of signature-verification workers fed over crossbeam
/// channels ([`AdmissionMode::Parallel`]).
///
/// The event-loop thread splits a wave into at most `workers` contiguous
/// chunks, the pool verifies them concurrently (each worker runs
/// [`BatchVerifier::verify_batch`] on whole chunks), and verdicts are
/// reassembled by chunk slot — the output is a pure function of the input
/// order, never of thread scheduling.
#[derive(Debug)]
struct VerifyPool {
    /// `Some` until drop; taken so workers see the channel close.
    jobs: Option<Sender<VerifyJob>>,
    verdicts: Receiver<VerifyVerdicts>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl VerifyPool {
    fn new(workers: usize, verifier: &BatchVerifier) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<VerifyJob>();
        let (verdict_tx, verdict_rx) = crossbeam::channel::unbounded::<VerifyVerdicts>();
        let handles = (0..workers)
            .map(|_| {
                let jobs = job_rx.clone();
                let verdicts = verdict_tx.clone();
                let verifier = verifier.clone();
                std::thread::spawn(move || {
                    while let Ok((slot, items)) = jobs.recv() {
                        if verdicts
                            .send((slot, verifier.verify_batch(&items)))
                            .is_err()
                        {
                            return;
                        }
                    }
                })
            })
            .collect();
        VerifyPool {
            jobs: Some(job_tx),
            verdicts: verdict_rx,
            workers,
            handles,
        }
    }

    /// Verifies `items` across the pool; verdicts come back in item order.
    fn verify(&self, items: &[SignedDigest]) -> Vec<bool> {
        if items.is_empty() {
            return Vec::new();
        }
        let jobs = self.jobs.as_ref().expect("pool alive");
        let chunk_len = items.len().div_ceil(self.workers);
        let mut slots = 0;
        for (slot, chunk) in items.chunks(chunk_len).enumerate() {
            jobs.send((slot, chunk.to_vec())).expect("workers alive");
            slots += 1;
        }
        let mut by_slot: Vec<Option<Vec<bool>>> = vec![None; slots];
        for _ in 0..slots {
            let (slot, verdicts) = self.verdicts.recv().expect("workers alive");
            by_slot[slot] = Some(verdicts);
        }
        by_slot
            .into_iter()
            .map(|chunk| chunk.expect("every slot answered"))
            .collect::<Vec<_>>()
            .concat()
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Closing the job channel is the shutdown signal.
        self.jobs = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The gossip module of Algorithm 1: builds the local DAG `G` and the
/// current block `B`.
///
/// # Examples
///
/// ```
/// use dagbft_core::{Gossip, GossipConfig, NetCommand, NetMessage};
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 1);
/// let mut alice = Gossip::new(
///     ServerId::new(0),
///     GossipConfig::for_n(2),
///     registry.signer(ServerId::new(0)).unwrap(),
///     registry.verifier(),
/// );
/// let (block, commands) = alice.disseminate(vec![], 0);
/// assert!(matches!(&commands[0], NetCommand::Broadcast { .. }));
/// assert!(alice.dag().contains(&block.block_ref()));
/// ```
#[derive(Debug)]
pub struct Gossip {
    me: ServerId,
    config: GossipConfig,
    signer: Signer,
    verifier: Verifier,
    dag: BlockDag,
    /// Sequence number of the block currently under construction.
    next_seq: SeqNum,
    /// `B.preds` of the block currently under construction (line 8 appends
    /// here, line 18 re-initializes with the parent reference).
    current_preds: Vec<BlockRef>,
    /// The `blks` buffer of received, not-yet-valid blocks (line 3).
    pending: BTreeMap<BlockRef, PendingBlock>,
    /// Reverse dependency index: missing predecessor → pending blocks
    /// waiting on it (incremental engine only).
    waiters: BTreeMap<BlockRef, BTreeSet<BlockRef>>,
    /// Missing predecessor → forward-request state.
    missing: BTreeMap<BlockRef, FwdState>,
    /// Blocks rejected as permanently invalid, with the reason — kept for
    /// auditing (the paper notes accountability as an extension, §6).
    rejected: Vec<(BlockRef, InvalidBlockError)>,
    stats: GossipStats,
    /// Wave-batched verification (index engines).
    batch_verifier: BatchVerifier,
    /// Worker pool, present only in [`AdmissionMode::Parallel`].
    pool: Option<VerifyPool>,
    wave_stats: WaveStats,
}

/// Result of the validity checks of Definition 3.3 against the current DAG.
enum Validity {
    /// All three conditions hold.
    Valid,
    /// Condition (iii) cannot be decided yet: some predecessors are unknown.
    MissingPreds,
    /// The block can never become valid.
    Invalid(InvalidBlockError),
}

impl Gossip {
    /// Creates a gossip instance for server `me`.
    pub fn new(me: ServerId, config: GossipConfig, signer: Signer, verifier: Verifier) -> Self {
        debug_assert_eq!(signer.id(), me);
        let (batch_verifier, pool) = Self::verification_engine(config.admission, &verifier);
        Gossip {
            me,
            config,
            signer,
            verifier,
            dag: BlockDag::new(),
            next_seq: SeqNum::ZERO,
            current_preds: Vec::new(),
            pending: BTreeMap::new(),
            waiters: BTreeMap::new(),
            missing: BTreeMap::new(),
            rejected: Vec::new(),
            stats: GossipStats::default(),
            batch_verifier,
            pool,
            wave_stats: WaveStats::default(),
        }
    }

    /// Builds the admission-mode-specific verification machinery: the
    /// batch handle always, the worker pool only for parallel admission.
    fn verification_engine(
        admission: AdmissionMode,
        verifier: &Verifier,
    ) -> (BatchVerifier, Option<VerifyPool>) {
        let batch_verifier = verifier.batch();
        let pool = match admission {
            AdmissionMode::Parallel { workers } => Some(VerifyPool::new(workers, &batch_verifier)),
            AdmissionMode::Index | AdmissionMode::Scan => None,
        };
        (batch_verifier, pool)
    }

    /// Resumes gossip from a persisted DAG after a crash (§7
    /// crash–recovery discussion).
    ///
    /// The next block continues this server's own chain: its sequence
    /// number follows the highest own block in `dag`, its predecessors are
    /// the own chain tip plus every block of `dag` the chain has not yet
    /// referenced (so messages received just before the crash still get
    /// delivered). Resuming from a *stale* image — one missing own blocks
    /// that already reached the network — would re-use sequence numbers,
    /// i.e. equivocate; persisting the DAG after each own dissemination
    /// (the `dag()` accessor plus `recovery::persist_dag`) avoids this, as
    /// the paper prescribes ("assuming that they persist enough
    /// information").
    pub fn resume(
        me: ServerId,
        config: GossipConfig,
        signer: Signer,
        verifier: Verifier,
        dag: BlockDag,
    ) -> Self {
        let own_tip = dag.height_of(me).map(|height| {
            let at = dag.blocks_at(me, height);
            debug_assert_eq!(at.len(), 1, "own chain must not be forked");
            at[0]
        });
        let next_seq = dag
            .height_of(me)
            .map(|height| height.next())
            .unwrap_or(SeqNum::ZERO);
        // Everything the own chain has referenced is an ancestor of the
        // tip; reference the rest now, in topological order.
        let referenced: std::collections::BTreeSet<BlockRef> = match own_tip {
            Some(tip) => {
                let mut set = dag.ancestors(&tip);
                set.insert(tip);
                set
            }
            None => Default::default(),
        };
        let mut current_preds: Vec<BlockRef> = Vec::new();
        if let Some(tip) = own_tip {
            current_preds.push(tip);
        }
        for block_ref in dag.refs() {
            if !referenced.contains(block_ref) {
                current_preds.push(*block_ref);
            }
        }
        let (batch_verifier, pool) = Self::verification_engine(config.admission, &verifier);
        Gossip {
            me,
            config,
            signer,
            verifier,
            dag,
            next_seq,
            current_preds,
            pending: BTreeMap::new(),
            waiters: BTreeMap::new(),
            missing: BTreeMap::new(),
            rejected: Vec::new(),
            stats: GossipStats::default(),
            batch_verifier,
            pool,
            wave_stats: WaveStats::default(),
        }
    }

    /// The server this instance runs as.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Read access to the local block DAG `G`.
    pub fn dag(&self) -> &BlockDag {
        &self.dag
    }

    /// Activity counters.
    pub fn stats(&self) -> &GossipStats {
        &self.stats
    }

    /// Wave-batched verification counters (zero under the scan oracle).
    pub fn wave_stats(&self) -> &WaveStats {
        &self.wave_stats
    }

    /// Number of buffered, not-yet-valid blocks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Blocks rejected as permanently invalid, with their reasons — the raw
    /// material for accountability mechanisms (§6 of the paper).
    pub fn rejected(&self) -> &[(BlockRef, InvalidBlockError)] {
        &self.rejected
    }

    /// Sequence number the next disseminated block will carry.
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Handles a message from `from`, returning transport commands
    /// (block handling: lines 4–13 of Algorithm 1).
    pub fn on_message(
        &mut self,
        from: ServerId,
        message: NetMessage,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        match message {
            NetMessage::Block(block) => self.on_block(block, now),
            NetMessage::FwdRequest(block_ref) => self.on_fwd_request(from, block_ref),
        }
    }

    /// Handles a received block (lines 4–11).
    pub fn on_block(&mut self, block: Block, now: TimeMs) -> Vec<NetCommand> {
        self.stats.blocks_received += 1;
        let block_ref = block.block_ref();
        if self.dag.contains(&block_ref) || self.pending.contains_key(&block_ref) {
            self.stats.duplicate_blocks += 1;
            return Vec::new();
        }
        match self.config.admission {
            AdmissionMode::Index | AdmissionMode::Parallel { .. } => {
                self.admit_indexed(block_ref, block)
            }
            AdmissionMode::Scan => {
                self.pending.insert(
                    block_ref,
                    PendingBlock {
                        block,
                        missing: BTreeSet::new(),
                    },
                );
                self.stats.pending_peak = self.stats.pending_peak.max(self.pending.len());
                self.promote_pending_scan();
                self.refresh_missing_scan();
            }
        }
        self.collect_fwd_commands(now)
    }

    /// Handles `FWD ref(B)` from `from`: if `B ∈ G`, send it back
    /// (lines 12–13). The reply shares the stored block's body and cached
    /// wire bytes — no deep clone, no re-encode.
    pub fn on_fwd_request(&mut self, from: ServerId, block_ref: BlockRef) -> Vec<NetCommand> {
        self.stats.fwd_received += 1;
        match self.dag.get(&block_ref) {
            Some(block) => {
                self.stats.fwd_answered += 1;
                vec![NetCommand::SendTo {
                    to: from,
                    message: NetMessage::Block(block.clone()),
                }]
            }
            None => Vec::new(),
        }
    }

    /// Periodic timer: re-issues `FWD` requests whose retry interval has
    /// elapsed.
    pub fn on_tick(&mut self, now: TimeMs) -> Vec<NetCommand> {
        self.collect_fwd_commands(now)
    }

    /// Seals and disseminates the current block with `requests` injected
    /// into `B.rs` (lines 14–18). Returns the built block and the broadcast
    /// command. The block is encoded exactly once (at build); the broadcast
    /// command and the DAG share its body by reference count.
    pub fn disseminate(
        &mut self,
        requests: Vec<LabeledRequest>,
        _now: TimeMs,
    ) -> (Block, Vec<NetCommand>) {
        let preds = std::mem::take(&mut self.current_preds);
        let block = Block::build(self.me, self.next_seq, preds, requests, &self.signer);
        // Line 16: insert the own block. Valid by construction (Lemma A.4):
        // signed by us, parent is our previous block, preds all validated.
        self.dag
            .insert(block.clone())
            .expect("own block preds are in the DAG");
        self.stats.blocks_built += 1;
        // Line 18: next block starts from the parent reference.
        self.current_preds = vec![block.block_ref()];
        self.next_seq = self.next_seq.next();
        let commands = vec![NetCommand::Broadcast {
            message: NetMessage::Block(block.clone()),
        }];
        (block, commands)
    }

    /// Indexed admission: index the new block's missing predecessors, or
    /// promote it — and cascade through its waiters — if none are
    /// missing. Equivalent to the scan engine (see `promote_pending_scan`)
    /// but costs O(preds · log) per block instead of a full-buffer rescan.
    fn admit_indexed(&mut self, block_ref: BlockRef, block: Block) {
        // The block is no longer wanted from the network: it is now either
        // pending (indexed below) or about to be promoted.
        self.missing.remove(&block_ref);
        let missing: BTreeSet<BlockRef> = block
            .preds()
            .iter()
            .filter(|p| !self.dag.contains(p))
            .copied()
            .collect();
        if missing.is_empty() {
            self.pending
                .insert(block_ref, PendingBlock { block, missing });
            self.stats.pending_peak = self.stats.pending_peak.max(self.pending.len());
            self.promote_cascade(block_ref);
            return;
        }
        for pred in &missing {
            self.waiters.entry(*pred).or_default().insert(block_ref);
            // Request the predecessor from the network unless it is already
            // buffered (then its own admission is what we're waiting for).
            if !self.pending.contains_key(pred) {
                self.missing
                    .entry(*pred)
                    .and_modify(|state| {
                        state.candidates.insert(block.builder());
                    })
                    .or_insert_with(|| FwdState {
                        candidates: BTreeSet::from([block.builder()]),
                        last_sent: None,
                        attempts: 0,
                    });
            }
        }
        self.pending
            .insert(block_ref, PendingBlock { block, missing });
        self.stats.pending_peak = self.stats.pending_peak.max(self.pending.len());
    }

    /// Promotes `start` and every pending block its admission unblocks,
    /// always taking the smallest ready reference first — the same
    /// deterministic order the scan engine's min-first rescan produces.
    ///
    /// Verification is pipelined in *waves*: whenever the front of the
    /// ready set has no signature verdict yet, every not-yet-verified
    /// ready block is checked in one [`BatchVerifier`] pass (fanned across
    /// the worker pool under [`AdmissionMode::Parallel`]). Verdicts are a
    /// pure per-block function of cached bytes, so pre-computing them in
    /// batches cannot change any promotion decision — only amortize its
    /// cost; each ready block is still verified exactly once, like the
    /// sequential engines.
    fn promote_cascade(&mut self, start: BlockRef) {
        let mut ready: BTreeSet<BlockRef> = BTreeSet::from([start]);
        // `Some(ok)` — batch-verified; `None` — no signature check needed
        // (unknown builder: `validate_with` rejects before the signature,
        // exactly as the per-block engines never reach the verifier).
        let mut verdicts: BTreeMap<BlockRef, Option<bool>> = BTreeMap::new();
        while let Some(front) = ready.first() {
            if !verdicts.contains_key(front) {
                self.verify_wave(&ready, &mut verdicts);
            }
            let block_ref = ready.pop_first().expect("front exists");
            let verdict = verdicts.remove(&block_ref).expect("wave verified front");
            let entry = self
                .pending
                .remove(&block_ref)
                .expect("ready block pending");
            match self.validate_with(&entry.block, verdict) {
                Validity::Valid => {
                    self.dag.insert(entry.block).expect("preds checked");
                    // Line 8: B.preds := B.preds · [ref(B')]. Appending once
                    // per block is Lemma A.6 (correct servers reference a
                    // block at most once).
                    self.current_preds.push(block_ref);
                    self.stats.blocks_validated += 1;
                    self.missing.remove(&block_ref);
                    // Wake the waiters: drop the satisfied dependency and
                    // queue any block that just became fully satisfied.
                    if let Some(waiting) = self.waiters.remove(&block_ref) {
                        for waiter in waiting {
                            if let Some(pending) = self.pending.get_mut(&waiter) {
                                pending.missing.remove(&block_ref);
                                if pending.missing.is_empty() {
                                    ready.insert(waiter);
                                }
                            }
                        }
                    }
                }
                Validity::Invalid(reason) => {
                    self.stats.invalid_blocks += 1;
                    self.rejected.push((block_ref, reason));
                    self.missing.remove(&block_ref);
                    // Blocks referencing the rejected block keep waiting
                    // (its ref can never enter the DAG); it counts as
                    // missing-from-the-network again, exactly as the scan
                    // engine's rebuild would re-list it.
                    if let Some(waiting) = self.waiters.get(&block_ref) {
                        let candidates: BTreeSet<ServerId> = waiting
                            .iter()
                            .filter_map(|w| self.pending.get(w))
                            .map(|p| p.block.builder())
                            .collect();
                        if !candidates.is_empty() {
                            self.missing.insert(
                                block_ref,
                                FwdState {
                                    candidates,
                                    last_sent: None,
                                    attempts: 0,
                                },
                            );
                        }
                    }
                }
                Validity::MissingPreds => {
                    unreachable!("ready block had all preds in the DAG")
                }
            }
        }
    }

    /// Fixed-point promotion of pending blocks (lines 6–9): any buffered
    /// block whose predecessors are all in the DAG is validated; valid
    /// blocks are inserted and referenced from the current block. The
    /// paper-literal engine, retained as the equivalence oracle.
    ///
    /// `pending` is an ordered map so the promotion order — and with it
    /// the pred-list order of the block under construction, which is
    /// hashed and signed — is a pure function of the received blocks,
    /// keeping whole-simulation runs bit-for-bit reproducible.
    fn promote_pending_scan(&mut self) {
        loop {
            let candidate = self.pending.iter().find_map(|(r, pending)| {
                pending
                    .block
                    .preds()
                    .iter()
                    .all(|p| self.dag.contains(p))
                    .then_some(*r)
            });
            let Some(block_ref) = candidate else {
                return;
            };
            let entry = self.pending.remove(&block_ref).expect("candidate pending");
            match self.validate(&entry.block) {
                Validity::Valid => {
                    self.dag.insert(entry.block).expect("preds checked");
                    self.current_preds.push(block_ref);
                    self.stats.blocks_validated += 1;
                    self.missing.remove(&block_ref);
                }
                Validity::Invalid(reason) => {
                    self.stats.invalid_blocks += 1;
                    self.rejected.push((block_ref, reason));
                    self.missing.remove(&block_ref);
                }
                Validity::MissingPreds => {
                    unreachable!("candidate had all preds in the DAG")
                }
            }
        }
    }

    /// Batch-verifies the signatures of every ready block that has no
    /// verdict yet — one wave, one `BatchVerifier` pass (split across the
    /// worker pool in parallel mode). Blocks claiming an unknown builder
    /// are marked `None`: the per-block engines reject those before ever
    /// reaching the verifier, so batching must not verify them either (it
    /// would skew the shared verification counters).
    fn verify_wave(
        &mut self,
        ready: &BTreeSet<BlockRef>,
        verdicts: &mut BTreeMap<BlockRef, Option<bool>>,
    ) {
        let mut wave: Vec<BlockRef> = Vec::new();
        let mut items: Vec<SignedDigest> = Vec::new();
        for block_ref in ready {
            if verdicts.contains_key(block_ref) {
                continue;
            }
            let block = &self.pending[block_ref].block;
            if block.builder().index() >= self.config.n {
                verdicts.insert(*block_ref, None);
            } else {
                wave.push(*block_ref);
                items.push(block.signed_digest());
            }
        }
        if items.is_empty() {
            return;
        }
        self.wave_stats.record(items.len());
        let results = match &self.pool {
            Some(pool) => pool.verify(&items),
            None => self.batch_verifier.verify_batch(&items),
        };
        debug_assert_eq!(results.len(), wave.len());
        for (block_ref, ok) in wave.into_iter().zip(results) {
            verdicts.insert(block_ref, Some(ok));
        }
    }

    /// The checks of Definition 3.3 for a block whose predecessors are all
    /// present (condition (iii) — "all preds valid" — then holds because
    /// only valid blocks enter the DAG).
    fn validate(&self, block: &Block) -> Validity {
        self.validate_with(block, None)
    }

    /// [`Gossip::validate`] with an optionally pre-computed signature
    /// verdict: `Some` uses the wave batch's result, `None` verifies
    /// inline. The check *order* is identical either way — the builder
    /// bound is decided before the signature is consulted.
    fn validate_with(&self, block: &Block, sig_verdict: Option<bool>) -> Validity {
        if block.builder().index() >= self.config.n {
            return Validity::Invalid(InvalidBlockError::UnknownBuilder {
                claimed: block.builder(),
            });
        }
        // (i) verify(B.n, B.σ).
        let sig_ok = sig_verdict.unwrap_or_else(|| block.verify_signature(&self.verifier));
        if !sig_ok {
            return Validity::Invalid(InvalidBlockError::BadSignature {
                claimed: block.builder(),
            });
        }
        // (iii) prerequisite: all preds known.
        if block.preds().iter().any(|p| !self.dag.contains(p)) {
            return Validity::MissingPreds;
        }
        // (ii) genesis, or exactly one parent.
        match block.parent_via(|r| self.dag.meta(r)) {
            Ok(_) => Validity::Valid,
            Err(err) => Validity::Invalid(err),
        }
    }

    /// Rebuilds the missing-predecessor index from the pending buffer
    /// (line 10: `B ∈ B'.preds`, `B ∉ blks`, `B ∉ G`) — scan engine only;
    /// the incremental engine maintains the index in place.
    fn refresh_missing_scan(&mut self) {
        let mut still_missing: BTreeMap<BlockRef, BTreeSet<ServerId>> = BTreeMap::new();
        for pending in self.pending.values() {
            for pred in pending.block.preds() {
                if !self.dag.contains(pred) && !self.pending.contains_key(pred) {
                    still_missing
                        .entry(*pred)
                        .or_default()
                        .insert(pending.block.builder());
                }
            }
        }
        // Drop satisfied entries, keep timers of persisting ones, add new.
        self.missing.retain(|r, _| still_missing.contains_key(r));
        for (block_ref, candidates) in still_missing {
            self.missing
                .entry(block_ref)
                .and_modify(|state| state.candidates.extend(candidates.iter().copied()))
                .or_insert(FwdState {
                    candidates,
                    last_sent: None,
                    attempts: 0,
                });
        }
    }

    /// Emits `FWD` requests for missing blocks, respecting the retry timer.
    fn collect_fwd_commands(&mut self, now: TimeMs) -> Vec<NetCommand> {
        let retry = self.config.fwd_retry_ms;
        let mut commands = Vec::new();
        for (block_ref, state) in self.missing.iter_mut() {
            let due = match state.last_sent {
                None => true,
                Some(last) => now.saturating_sub(last) >= retry,
            };
            if !due || state.candidates.is_empty() {
                continue;
            }
            // Ask the builder of a block that referenced it (line 11);
            // rotate through candidates on retries.
            let candidates: Vec<ServerId> = state.candidates.iter().copied().collect();
            let target = candidates[state.attempts as usize % candidates.len()];
            state.last_sent = Some(now);
            state.attempts += 1;
            self.stats.fwd_sent += 1;
            commands.push(NetCommand::SendTo {
                to: target,
                message: NetMessage::FwdRequest(*block_ref),
            });
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::encode_to_vec;
    use dagbft_crypto::KeyRegistry;

    fn gossip_for(registry: &KeyRegistry, id: u32, n: usize) -> Gossip {
        Gossip::new(
            ServerId::new(id),
            GossipConfig::for_n(n),
            registry.signer(ServerId::new(id)).unwrap(),
            registry.verifier(),
        )
    }

    fn gossip_for_mode(registry: &KeyRegistry, id: u32, n: usize, mode: AdmissionMode) -> Gossip {
        Gossip::new(
            ServerId::new(id),
            GossipConfig::for_n(n).with_admission(mode),
            registry.signer(ServerId::new(id)).unwrap(),
            registry.verifier(),
        )
    }

    #[test]
    fn disseminate_builds_chain() {
        let registry = KeyRegistry::generate(2, 1);
        let mut gossip = gossip_for(&registry, 0, 2);
        let (b0, _) = gossip.disseminate(vec![], 0);
        let (b1, _) = gossip.disseminate(vec![], 10);
        assert!(b0.is_genesis());
        assert_eq!(b1.seq(), SeqNum::new(1));
        assert_eq!(b1.preds(), &[b0.block_ref()]);
        assert_eq!(gossip.dag().len(), 2);
        assert_eq!(gossip.stats().blocks_built, 2);
    }

    #[test]
    fn received_valid_block_inserted_and_referenced() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_block, _) = bob.disseminate(vec![], 0);

        let commands = alice.on_block(bob_block.clone(), 0);
        assert!(commands.is_empty());
        assert!(alice.dag().contains(&bob_block.block_ref()));
        assert_eq!(alice.stats().blocks_validated, 1);

        // Alice's next block references Bob's (line 8).
        let (alice_block, _) = alice.disseminate(vec![], 1);
        assert!(alice_block.preds().contains(&bob_block.block_ref()));
    }

    #[test]
    fn duplicate_blocks_counted_not_reinserted() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_block, _) = bob.disseminate(vec![], 0);
        alice.on_block(bob_block.clone(), 0);
        alice.on_block(bob_block.clone(), 1);
        assert_eq!(alice.stats().duplicate_blocks, 1);
        assert_eq!(alice.dag().len(), 1);
        // The reference is appended only once (Lemma A.6).
        let (alice_block, _) = alice.disseminate(vec![], 2);
        let count = alice_block
            .preds()
            .iter()
            .filter(|r| **r == bob_block.block_ref())
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn bad_signature_rejected() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let forged = Block::build_with_signature(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![],
            dagbft_crypto::Signature::NULL,
        );
        alice.on_block(forged.clone(), 0);
        assert_eq!(alice.stats().invalid_blocks, 1);
        assert!(!alice.dag().contains(&forged.block_ref()));
    }

    #[test]
    fn unknown_builder_rejected() {
        let registry = KeyRegistry::generate(4, 1);
        let mut alice = gossip_for(&registry, 0, 2); // only servers 0 and 1
        let outsider = Block::build(
            ServerId::new(3),
            SeqNum::ZERO,
            vec![],
            vec![],
            &registry.signer(ServerId::new(3)).unwrap(),
        );
        alice.on_block(outsider, 0);
        assert_eq!(alice.stats().invalid_blocks, 1);
    }

    #[test]
    fn missing_pred_triggers_fwd_to_builder() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);

        // Alice receives b1 without b0: FWD to Bob (builder of b1).
        let commands = alice.on_block(bob_b1.clone(), 5);
        assert_eq!(
            commands,
            vec![NetCommand::SendTo {
                to: ServerId::new(1),
                message: NetMessage::FwdRequest(bob_b0.block_ref()),
            }]
        );
        assert_eq!(alice.pending_len(), 1);
        assert_eq!(alice.stats().fwd_sent, 1);

        // Bob answers the FWD with the block.
        let answers = bob.on_fwd_request(ServerId::new(0), bob_b0.block_ref());
        assert_eq!(
            answers,
            vec![NetCommand::SendTo {
                to: ServerId::new(0),
                message: NetMessage::Block(bob_b0.clone()),
            }]
        );

        // Delivery resolves the gap; both blocks are promoted.
        alice.on_block(bob_b0.clone(), 6);
        assert!(alice.dag().contains(&bob_b0.block_ref()));
        assert!(alice.dag().contains(&bob_b1.block_ref()));
        assert_eq!(alice.pending_len(), 0);
    }

    #[test]
    fn fwd_reply_shares_the_stored_block_body() {
        let registry = KeyRegistry::generate(2, 1);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let answers = bob.on_fwd_request(ServerId::new(0), bob_b0.block_ref());
        let NetCommand::SendTo {
            message: NetMessage::Block(served),
            ..
        } = &answers[0]
        else {
            panic!("expected a block reply");
        };
        // Zero-copy reply: the served block's wire image is the same
        // allocation the DAG holds.
        assert!(served
            .wire_bytes()
            .shares_allocation_with(bob_b0.wire_bytes()));
    }

    #[test]
    fn fwd_retry_respects_interval() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (_bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);

        let first = alice.on_block(bob_b1, 0);
        assert_eq!(first.len(), 1);
        // Too early: no retry.
        assert!(alice.on_tick(50).is_empty());
        // After the interval: retried.
        let retried = alice.on_tick(100);
        assert_eq!(retried.len(), 1);
        assert_eq!(alice.stats().fwd_sent, 2);
    }

    #[test]
    fn fwd_request_for_unknown_block_ignored() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let bogus = BlockRef::from_digest(dagbft_crypto::Digest::ZERO);
        assert!(alice.on_fwd_request(ServerId::new(1), bogus).is_empty());
        assert_eq!(alice.stats().fwd_received, 1);
        assert_eq!(alice.stats().fwd_answered, 0);
    }

    #[test]
    fn equivocating_blocks_both_accepted() {
        // Figure 3: equivocation is *valid*; detection is the DAG's job,
        // tolerance is P's job.
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let b3 = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let b4 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        alice.on_block(b3.clone(), 0);
        alice.on_block(b4.clone(), 0);
        assert!(alice.dag().contains(&b3.block_ref()));
        assert!(alice.dag().contains(&b4.block_ref()));
        assert_eq!(alice.dag().equivocations(ServerId::new(1)).len(), 1);
    }

    #[test]
    fn block_with_two_distinct_parents_rejected() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        let child = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        alice.on_block(g_a, 0);
        alice.on_block(g_b, 0);
        alice.on_block(child.clone(), 0);
        assert!(!alice.dag().contains(&child.block_ref()));
        assert_eq!(alice.stats().invalid_blocks, 1);
    }

    #[test]
    fn net_message_wire_roundtrip() {
        let registry = KeyRegistry::generate(1, 1);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let block = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
        for message in [
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ] {
            let bytes = encode_to_vec(&message);
            assert_eq!(bytes.len(), message.wire_len());
            let (discriminant, payload) = message.payload_view();
            assert_eq!(bytes[0], discriminant);
            assert_eq!(&bytes[1..], payload);
            let decoded: NetMessage = dagbft_codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(decoded, message);
        }
    }

    /// Every admission engine, for mode-spanning tests.
    const ALL_MODES: [AdmissionMode; 3] = [
        AdmissionMode::Index,
        AdmissionMode::Scan,
        AdmissionMode::Parallel { workers: 2 },
    ];

    #[test]
    fn out_of_order_chain_promotes_in_one_pass() {
        let registry = KeyRegistry::generate(2, 1);
        for mode in ALL_MODES {
            let mut alice = gossip_for_mode(&registry, 0, 2, mode);
            let mut bob = gossip_for(&registry, 1, 2);
            let blocks: Vec<Block> = (0..5).map(|t| bob.disseminate(vec![], t).0).collect();
            // Deliver in reverse order: everything buffers, then promotes at
            // once.
            for block in blocks.iter().rev().take(4) {
                alice.on_block(block.clone(), 0);
            }
            assert_eq!(alice.dag().len(), 0);
            alice.on_block(blocks[0].clone(), 1);
            assert_eq!(alice.dag().len(), 5);
            assert_eq!(alice.pending_len(), 0);
            assert!(alice.dag().check_invariants());
        }
    }

    /// Drives all three admission engines through the same hostile
    /// schedule and asserts every observable — commands per delivery, DAG
    /// content *and order*, pred list, stats, rejections — is identical.
    fn assert_engines_agree(deliveries: &[(Block, TimeMs)], n: usize, registry: &KeyRegistry) {
        let mut engines: Vec<Gossip> = ALL_MODES
            .iter()
            .map(|mode| gossip_for_mode(registry, 0, n, *mode))
            .collect();
        for (block, at) in deliveries {
            let commands: Vec<Vec<NetCommand>> = engines
                .iter_mut()
                .map(|engine| engine.on_block(block.clone(), *at))
                .collect();
            for other in &commands[1..] {
                assert_eq!(&commands[0], other, "commands diverged at t={at}");
            }
        }
        let reference = &engines[0];
        let refs: Vec<BlockRef> = reference.dag().iter().map(|b| b.block_ref()).collect();
        for other in &engines[1..] {
            let other_refs: Vec<BlockRef> = other.dag().iter().map(|b| b.block_ref()).collect();
            assert_eq!(refs, other_refs, "promotion order diverged");
            assert_eq!(reference.pending_len(), other.pending_len());
            assert_eq!(reference.stats(), other.stats());
            assert_eq!(reference.rejected(), other.rejected());
        }
        // The index engines batch every signature they check (every
        // promoted or rejected block except unknown-builder rejects, which
        // never reach the verifier); the scan oracle never batches.
        assert!(engines[0].wave_stats().batched_blocks >= engines[0].stats().blocks_validated);
        assert!(
            engines[0].wave_stats().batched_blocks
                <= engines[0].stats().blocks_validated + engines[0].stats().invalid_blocks
        );
        assert_eq!(engines[1].wave_stats(), &WaveStats::default());
        assert_eq!(engines[0].wave_stats(), engines[2].wave_stats());
        let own: Vec<Block> = engines
            .iter_mut()
            .map(|engine| engine.disseminate(vec![], 1_000).0)
            .collect();
        for other in &own[1..] {
            assert_eq!(&own[0], other, "current block preds diverged");
        }
    }

    #[test]
    fn engines_agree_on_reverse_order_burst() {
        let registry = KeyRegistry::generate(3, 1);
        let mut bob = gossip_for(&registry, 1, 3);
        let blocks: Vec<Block> = (0..12).map(|t| bob.disseminate(vec![], t).0).collect();
        let deliveries: Vec<(Block, TimeMs)> = blocks
            .iter()
            .rev()
            .enumerate()
            .map(|(i, b)| (b.clone(), i as TimeMs))
            .collect();
        assert_engines_agree(&deliveries, 3, &registry);
    }

    #[test]
    fn engines_agree_on_equivocation_with_invalid_children() {
        let registry = KeyRegistry::generate(3, 1);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        // Equivocating genesis pair…
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        // …an invalid child referencing both parents…
        let two_parents = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        // …and a grandchild of the invalid block: can never promote, keeps
        // FWD-ing the rejected ref.
        let grandchild = Block::build(
            ServerId::new(1),
            SeqNum::new(2),
            vec![two_parents.block_ref()],
            vec![],
            &signer1,
        );
        // Forged signature on a valid-shaped block, delivered out of order.
        let forged = Block::build_with_signature(
            ServerId::new(2),
            SeqNum::ZERO,
            vec![],
            vec![],
            dagbft_crypto::Signature::NULL,
        );
        let deliveries: Vec<(Block, TimeMs)> = [
            (grandchild, 0),
            (two_parents, 1),
            (forged, 2),
            (g_b, 3),
            (g_a, 4),
        ]
        .into_iter()
        .collect();
        assert_engines_agree(&deliveries, 3, &registry);
    }
}
