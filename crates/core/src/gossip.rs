//! Building the block DAG — Algorithm 1 of the paper.
//!
//! The networking component is deliberately simple: there is one core
//! message type, the block, plus the `FWD` request used to pull missing
//! predecessors from the server whose block referenced them
//! (lines 10–13). A correct server
//!
//! * buffers received blocks (`blks`, lines 4–5),
//! * promotes them into its DAG once valid (lines 6–9), appending a
//!   reference to each newly valid block to its *current block* `B`
//!   (line 8),
//! * serves `FWD` requests from its DAG (lines 12–13), and
//! * on `disseminate()` seals `B` with the pending user requests and its
//!   signature, sends it to everyone, and starts the next block with the
//!   parent reference (lines 14–18).
//!
//! The module is transport-agnostic: entry points consume [`NetMessage`]s
//! and return [`NetCommand`]s for the caller (simulator, tests, or a real
//! event loop) to execute. Time is passed in explicitly and is only used to
//! pace `FWD` retransmissions (the paper's timer `Δ_B'`).
//!
//! # Admission engines
//!
//! Buffered-block admission (the promotion of `blks` entries into `G`) has
//! three interchangeable engines, selected by [`AdmissionMode`]:
//!
//! * [`AdmissionMode::Index`] (the default) maintains a reverse
//!   dependency index — pending block → still-missing predecessors, missing
//!   predecessor → waiting blocks — so admitting a burst of `B` buffered
//!   blocks costs O(B · preds) map operations. Each *wave* of
//!   simultaneously ready blocks is signature-checked in one
//!   [`BatchVerifier`] pass over the cached `ref(B)` digests, amortizing
//!   the per-verification key setup (the paper's batch-signature economics,
//!   §4/E6).
//! * [`AdmissionMode::Parallel`] is the index engine with each wave's
//!   batched verification split across a fixed pool of worker threads
//!   over crossbeam channels. The split is synchronous — promotion waits
//!   for all verdicts — so it pays off only when waves are wide enough
//!   for multi-core verification to beat the single-threaded batch (per
//!   chunk dispatch costs a channel round-trip; on the narrow waves of
//!   chain-shaped bursts the `Index` engine is faster). Verdicts are
//!   reassembled in submission order before any state changes, so
//!   promotion order — and every byte that is later hashed and signed —
//!   is identical to the sequential engines regardless of worker
//!   scheduling.
//! * [`AdmissionMode::Scan`] is the paper-literal fixed-point rescan
//!   (O(pending²) on adversarial orderings) with one signature check per
//!   candidate, retained as the equivalence oracle: tests and the
//!   `report_wire`/`report_admission` benches drive all engines with
//!   identical hostile schedules and assert identical DAGs, promotion
//!   orders, stats, and `FWD` traffic.
//!
//! # Deferred admission bursts
//!
//! Waves are only as wide as the ready set at verification time, and
//! per-message ingest keeps that set narrow: a chain delivered in order
//! promotes one block per [`Gossip::on_block`], so every wave has width 1
//! and the parallel pool starves. The *burst* path widens the unit of
//! work from "one cascade's ready wave" to "one whole admission burst":
//! [`Gossip::begin_burst`] opens a bracket in which `on_block` only
//! dedups and buffers (O(1) per block — no verification, no promotion,
//! no per-predecessor bookkeeping), and [`Gossip::end_burst`] then runs
//! *one* dependency-analysis pass over the whole buffer (missing
//! counts + reverse adjacency), computes the full ready frontier
//! *across all cascades*, verifies it wave by wave — each wave ordered
//! by `(builder, seq, ref)` so same-builder runs are contiguous for the
//! verifier — and promotes in that canonical order, rebuilding the
//! incremental index for whatever survives. [`Gossip::on_block_burst`]
//! wraps the bracket for slice-shaped callers (the shim's ingest loop,
//! the simulator's burst delivery, the transport's channel drain).
//!
//! Burst promotion is deterministic and byte-identical across all three
//! engines (they share the wave schedule and differ only in verification
//! dispatch: per-candidate under `Scan`, one [`BatchVerifier`] pass per
//! wave under `Index`, pipelined pool fan-out under `Parallel`, which
//! overlaps in-flight verification with promotion bookkeeping). Relative
//! to per-message ingest the *outcome* — admitted blocks, rejections,
//! validation counts — is identical as well (the promotion fixed point is
//! confluent); only the order in which the current block references the
//! newly admitted blocks, and the `FWD` traffic for gaps resolved within
//! the burst, may differ.
//!
//! # Pending-buffer cap
//!
//! The `blks` buffer is bounded by [`GossipConfig::pending_cap`]: once
//! admission (per-message or burst) has settled, the buffer is trimmed to
//! the cap by deterministic eviction — oldest *never-promotable* block
//! first (one referencing an already rejected predecessor), then oldest
//! overall. Each eviction emits an [`EvictionEvent`] and re-lists the
//! evicted reference as missing for any surviving waiters, so the `FWD`
//! path can re-fetch a wanted block after byzantine flood pressure
//! subsides — eviction bounds memory, never safety.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crossbeam::channel::{Receiver, Sender};
use dagbft_codec::{DecodeError, Reader, WireDecode, WireEncode};
use dagbft_crypto::{BatchVerifier, ServerId, SignedDigest, Signer, Verifier};

use crate::block::{Block, BlockRef, LabeledRequest, SeqNum};
use crate::dag::BlockDag;
use crate::defense::{AdmitVerdict, DefenseConfig, Offense, PeerDefense};
use crate::error::InvalidBlockError;
use crate::TimeMs;

/// The messages servers exchange: blocks, and forward requests for missing
/// predecessor blocks (Algorithm 1).
///
/// Cloning is cheap by construction — a block is an `Arc`'d body with
/// cached wire bytes — so fanning one message out to `n − 1` peers never
/// deep-copies or re-encodes the block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetMessage {
    /// A block being disseminated (line 17) or forwarded (line 13).
    Block(Block),
    /// `FWD ref(B)`: "please send me block `B`" (line 11).
    FwdRequest(BlockRef),
}

impl NetMessage {
    /// Size of this message on the wire, in bytes. O(1): one discriminant
    /// byte plus the cached payload length — no encoding happens.
    pub fn wire_len(&self) -> usize {
        let (_, payload) = self.payload_view();
        1 + payload.len()
    }

    /// The message as `(discriminant, canonical payload bytes)` without
    /// encoding anything: blocks expose their cached wire image,
    /// references their digest bytes. Frame writers emit the discriminant
    /// byte followed by the payload verbatim — the zero-copy send path.
    pub fn payload_view(&self) -> (u8, &[u8]) {
        match self {
            NetMessage::Block(block) => (0, block.wire_bytes()),
            NetMessage::FwdRequest(block_ref) => (1, block_ref.as_bytes()),
        }
    }
}

impl WireEncode for NetMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        let (discriminant, payload) = self.payload_view();
        out.push(discriminant);
        out.extend_from_slice(payload);
    }
}

impl WireDecode for NetMessage {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match reader.read_u8()? {
            0 => Ok(NetMessage::Block(Block::decode(reader)?)),
            1 => Ok(NetMessage::FwdRequest(BlockRef::decode(reader)?)),
            value => Err(DecodeError::InvalidDiscriminant {
                type_name: "NetMessage",
                value,
            }),
        }
    }
}

/// An instruction to the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetCommand {
    /// Send `message` to a single server.
    SendTo {
        /// The destination server.
        to: ServerId,
        /// The message to deliver.
        message: NetMessage,
    },
    /// Send `message` to every *other* server (line 17; the sender already
    /// holds the block).
    Broadcast {
        /// The message to deliver to all peers.
        message: NetMessage,
    },
}

/// Which engine admits buffered blocks into the DAG (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionMode {
    /// Reverse-dependency index with wave-batched signature verification:
    /// O(preds) bookkeeping per block, one `BatchVerifier` pass per ready
    /// wave.
    #[default]
    Index,
    /// The paper-literal full rescan, kept as the equivalence oracle.
    Scan,
    /// The index engine with wave verification split across a worker
    /// pool (`workers` threads, clamped to at least 1); wins over
    /// [`AdmissionMode::Index`] only on wide waves (see the module docs).
    /// Promotion order is byte-identical to the sequential engines.
    Parallel {
        /// Number of verification worker threads.
        workers: usize,
    },
}

impl AdmissionMode {
    /// Parallel admission with `workers` verification threads.
    pub fn parallel(workers: usize) -> Self {
        AdmissionMode::Parallel { workers }
    }
}

/// Default bound on the pending (`blks`) buffer — far above any honest
/// in-flight backlog, low enough that a byzantine flood of
/// never-promotable blocks cannot grow memory without bound.
pub const DEFAULT_PENDING_CAP: usize = 65_536;

/// Configuration for the gossip layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Total number of servers `|Srvrs|`.
    pub n: usize,
    /// Minimum time between repeated `FWD` requests for the same block
    /// (the paper's per-block wait `Δ_B'`, informed by the round-trip time).
    pub fwd_retry_ms: TimeMs,
    /// The admission engine for buffered blocks.
    pub admission: AdmissionMode,
    /// Maximum number of buffered, not-yet-valid blocks; exceeding it
    /// triggers deterministic eviction (see the module docs).
    pub pending_cap: usize,
    /// The adversarial peer-defense engine (scoring, rate limits, bans;
    /// disabled by default — see [`crate::defense`]).
    pub defense: DefenseConfig,
}

impl GossipConfig {
    /// Configuration for `n` servers with the default 100 ms `FWD` retry
    /// and incremental admission.
    pub fn for_n(n: usize) -> Self {
        GossipConfig {
            n,
            fwd_retry_ms: 100,
            admission: AdmissionMode::default(),
            pending_cap: DEFAULT_PENDING_CAP,
            defense: DefenseConfig::default(),
        }
    }

    /// Selects the admission engine.
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// Bounds the pending buffer (must be at least 1).
    pub fn with_pending_cap(mut self, cap: usize) -> Self {
        self.pending_cap = cap.max(1);
        self
    }

    /// Configures the peer-defense engine.
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = defense;
        self
    }
}

/// Counters describing a gossip instance's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GossipStats {
    /// Blocks received from the network (before dedup).
    pub blocks_received: u64,
    /// Received blocks already present in the DAG or the pending buffer.
    pub duplicate_blocks: u64,
    /// Blocks rejected by the validity checks of Definition 3.3.
    pub invalid_blocks: u64,
    /// Blocks from other servers promoted into the DAG.
    pub blocks_validated: u64,
    /// Own blocks built and disseminated.
    pub blocks_built: u64,
    /// `FWD` requests sent.
    pub fwd_sent: u64,
    /// `FWD` requests received from peers.
    pub fwd_received: u64,
    /// Blocks re-sent in answer to `FWD` requests.
    pub fwd_answered: u64,
    /// Peak size of the pending (`blks`) buffer.
    pub pending_peak: usize,
    /// Pending blocks evicted by the buffer cap (see [`EvictionEvent`]).
    pub blocks_evicted: u64,
}

/// State of an outstanding forward request for one missing block.
#[derive(Debug, Clone)]
struct FwdState {
    /// Builders of pending blocks that reference the missing block — the
    /// servers Algorithm 1 line 11 directs requests to.
    candidates: BTreeSet<ServerId>,
    /// When the last `FWD` was sent, if any.
    last_sent: Option<TimeMs>,
    /// Number of requests sent so far (used to rotate candidates).
    attempts: u32,
}

/// Eviction rank of a pending block known never-promotable (references a
/// rejected block, transitively) — evicted first.
const RANK_STRANDED: u8 = 0;
/// Eviction rank of a block claiming a deprioritized (caught-equivocating)
/// builder — evicted before honest backlog.
const RANK_DEPRIORITIZED: u8 = 1;
/// Eviction rank of an ordinary pending block — evicted last, oldest first.
const RANK_NORMAL: u8 = 2;

/// A buffered, not-yet-valid block plus its admission bookkeeping.
#[derive(Debug, Clone)]
struct PendingBlock {
    block: Block,
    /// The peer that delivered the block (for offense attribution — the
    /// claimed builder is unauthenticated until the signature verifies).
    from: ServerId,
    /// Predecessors not yet in the DAG (maintained by the index engines;
    /// the scan engine recomputes promotability from the DAG).
    missing: BTreeSet<BlockRef>,
    /// Receipt ordinal — the deterministic age the eviction policy sorts
    /// by ("oldest never-promotable first").
    arrival: u64,
    /// Whether the block is known never-promotable (references a
    /// rejected block, transitively).
    stranded: bool,
    /// The block's current eviction-queue rank ([`RANK_STRANDED`] /
    /// [`RANK_DEPRIORITIZED`] / [`RANK_NORMAL`]). Every re-rank updates
    /// this together with the queue, so the queue key can always be
    /// reconstructed exactly.
    rank: u8,
}

/// Accountability record for one pending-buffer eviction.
///
/// Eviction is a resource decision, not a validity verdict: the evicted
/// block re-enters the `FWD` missing set for any surviving waiters, so it
/// can be re-fetched and admitted later. The event names the builder
/// whose block was dropped — under a byzantine flood that is the flooding
/// server, the raw material the paper's §6 accountability discussion
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEvent {
    /// The evicted block.
    pub block: BlockRef,
    /// Its claimed builder.
    pub builder: ServerId,
    /// The never-promotable predecessor (rejected, or itself stranded on
    /// a rejection) that doomed the block, when the policy picked it for
    /// that reason (`None`: evicted as oldest overall).
    pub stranded_on: Option<BlockRef>,
}

/// Counters for the wave-batched verification pipeline (index engines
/// only; the scan oracle verifies per candidate and leaves these zero).
///
/// Deliberately *not* part of [`GossipStats`]: that struct is asserted
/// equal across admission engines by the equivalence tests, and waves are
/// an implementation property of the batched engines, not an observable
/// of Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Verification waves batched so far.
    pub waves: u64,
    /// Blocks signature-checked through batched waves.
    pub batched_blocks: u64,
    /// Size of the largest wave.
    pub largest_wave: usize,
    /// Size of the smallest wave (0 until the first wave is recorded).
    pub smallest_wave: usize,
    /// Deferred-admission brackets processed (`begin_burst`/`end_burst`;
    /// recorded by every engine, including the scan oracle — burst shape
    /// is an ingest property, not a batching one).
    pub bursts: u64,
    /// Blocks buffered through those brackets (received minus duplicates).
    pub burst_blocks: u64,
    /// Wave-width histogram over power-of-two buckets: index `i` counts
    /// waves of width in `[2^i, 2^(i+1))`; the last bucket is open-ended.
    pub width_histogram: [u64; WAVE_WIDTH_BUCKETS],
}

/// Number of log₂ buckets in [`WaveStats::width_histogram`] (widths 1 up
/// to ≥ 2048).
pub const WAVE_WIDTH_BUCKETS: usize = 12;

impl WaveStats {
    fn record(&mut self, wave: usize) {
        debug_assert!(wave > 0, "empty waves are not recorded");
        self.waves += 1;
        self.batched_blocks += wave as u64;
        self.largest_wave = self.largest_wave.max(wave);
        self.smallest_wave = if self.waves == 1 {
            wave
        } else {
            self.smallest_wave.min(wave)
        };
        let bucket = (wave.ilog2() as usize).min(WAVE_WIDTH_BUCKETS - 1);
        self.width_histogram[bucket] += 1;
    }

    /// Mean wave width (0.0 before the first wave).
    pub fn mean_wave(&self) -> f64 {
        if self.waves == 0 {
            0.0
        } else {
            self.batched_blocks as f64 / self.waves as f64
        }
    }

    /// Folds another instance's counters into this one — how the
    /// simulator aggregates per-server wave statistics into a
    /// whole-deployment view.
    pub fn merge(&mut self, other: &WaveStats) {
        self.smallest_wave = match (self.waves, other.waves) {
            (_, 0) => self.smallest_wave,
            (0, _) => other.smallest_wave,
            _ => self.smallest_wave.min(other.smallest_wave),
        };
        self.waves += other.waves;
        self.batched_blocks += other.batched_blocks;
        self.largest_wave = self.largest_wave.max(other.largest_wave);
        self.bursts += other.bursts;
        self.burst_blocks += other.burst_blocks;
        for (mine, theirs) in self.width_histogram.iter_mut().zip(other.width_histogram) {
            *mine += theirs;
        }
    }
}

/// One unit of work for the verification pool.
#[derive(Debug)]
enum VerifyJob {
    /// Verify a chunk of signature claims: `(slot, items)`. Answered on
    /// the verdict channel for slot-ordered reassembly.
    Verify(usize, Vec<SignedDigest>),
    /// Warm the `ref(B)` caches of freshly decoded blocks (one SHA-256
    /// each, filling the block's shared `OnceLock`). Fire-and-forget: no
    /// verdict reply, and the event-loop thread computes any ref a
    /// worker hasn't reached yet, so verdicts and promotion order never
    /// depend on scheduling.
    Hash(Vec<Block>),
}

/// A worker's verdicts for one chunk: `(slot, per-item results)`.
type VerifyVerdicts = (usize, Vec<bool>);

/// A fixed pool of signature-verification workers fed over crossbeam
/// channels ([`AdmissionMode::Parallel`]).
///
/// The event-loop thread splits a wave into at most `workers` contiguous
/// chunks, the pool verifies them concurrently (each worker runs
/// [`BatchVerifier::verify_batch`] on whole chunks), and verdicts are
/// reassembled by chunk slot — the output is a pure function of the input
/// order, never of thread scheduling.
#[derive(Debug)]
struct VerifyPool {
    /// `Some` until drop; taken so workers see the channel close.
    jobs: Option<Sender<VerifyJob>>,
    verdicts: Receiver<VerifyVerdicts>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl VerifyPool {
    fn new(workers: usize, verifier: &BatchVerifier) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<VerifyJob>();
        let (verdict_tx, verdict_rx) = crossbeam::channel::unbounded::<VerifyVerdicts>();
        let handles = (0..workers)
            .map(|_| {
                let jobs = job_rx.clone();
                let verdicts = verdict_tx.clone();
                let verifier = verifier.clone();
                std::thread::spawn(move || {
                    while let Ok(job) = jobs.recv() {
                        match job {
                            VerifyJob::Verify(slot, items) => {
                                if verdicts
                                    .send((slot, verifier.verify_batch(&items)))
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            VerifyJob::Hash(blocks) => {
                                for block in &blocks {
                                    let _ = block.block_ref();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        VerifyPool {
            jobs: Some(job_tx),
            verdicts: verdict_rx,
            workers,
            handles,
        }
    }

    /// Verifies `items` across the pool; verdicts come back in item order.
    fn verify(&self, items: &[SignedDigest]) -> Vec<bool> {
        if items.is_empty() {
            return Vec::new();
        }
        let jobs = self.jobs.as_ref().expect("pool alive");
        let chunk_len = items.len().div_ceil(self.workers);
        let mut slots = 0;
        for (slot, chunk) in items.chunks(chunk_len).enumerate() {
            jobs.send(VerifyJob::Verify(slot, chunk.to_vec()))
                .expect("workers alive");
            slots += 1;
        }
        let mut by_slot: Vec<Option<Vec<bool>>> = vec![None; slots];
        for _ in 0..slots {
            let (slot, verdicts) = self.verdicts.recv().expect("workers alive");
            by_slot[slot] = Some(verdicts);
        }
        by_slot
            .into_iter()
            .map(|chunk| chunk.expect("every slot answered"))
            .collect::<Vec<_>>()
            .concat()
    }

    /// Dispatches `items` across the pool in small chunks and returns a
    /// cursor yielding verdicts *in item order* as chunks complete — the
    /// burst path's pipeline: the event-loop thread promotes blocks of
    /// chunk `k` while the workers are still verifying chunks `k+1…`.
    /// Verdicts remain a pure function of the input order; only the
    /// overlap of verification and promotion bookkeeping changes.
    fn stream(&self, items: &[SignedDigest]) -> VerdictStream<'_> {
        let mut dispatched = 0;
        if !items.is_empty() {
            let jobs = self.jobs.as_ref().expect("pool alive");
            // Several chunks per worker so verdicts start flowing early
            // and the reassembly thread rarely stalls; a floor keeps the
            // per-chunk channel round-trip amortized on small waves.
            let chunk_len = items
                .len()
                .div_ceil(self.workers * PIPELINE_CHUNKS_PER_WORKER)
                .max(MIN_PIPELINE_CHUNK);
            for (slot, chunk) in items.chunks(chunk_len).enumerate() {
                jobs.send(VerifyJob::Verify(slot, chunk.to_vec()))
                    .expect("workers alive");
                dispatched += 1;
            }
        }
        VerdictStream {
            verdicts: &self.verdicts,
            outstanding: dispatched,
            reorder: BTreeMap::new(),
            next_slot: 0,
            current: Vec::new().into_iter(),
        }
    }

    /// Fans the `ref(B)` hashing of a decoded burst across the workers
    /// while the event-loop thread buffers the same blocks front to
    /// back. Chunks are dispatched back to front so the two ends meet in
    /// the middle; whoever reaches a block first fills its shared cache,
    /// and `OnceLock` guarantees each hash is computed exactly once.
    /// Tiny bursts skip the channel round-trip.
    fn hash_blocks(&self, blocks: &[Block]) {
        if blocks.len() < MIN_HASH_FANOUT {
            return;
        }
        let jobs = self.jobs.as_ref().expect("pool alive");
        let chunk_len = blocks
            .len()
            .div_ceil(self.workers * PIPELINE_CHUNKS_PER_WORKER)
            .max(MIN_PIPELINE_CHUNK);
        for chunk in blocks.chunks(chunk_len).rev() {
            jobs.send(VerifyJob::Hash(chunk.to_vec()))
                .expect("workers alive");
        }
    }
}

/// Gear selector for `end_burst`: the whole-buffer analysis pass runs
/// only when the burst is at least this share (1/N) of the pending
/// buffer, so its O(pending) cost is always amortized by the burst
/// itself; smaller bursts index incrementally in O(burst · preds).
const DEFERRED_ANALYSIS_FACTOR: usize = 4;

/// Chunks dispatched per worker by [`VerifyPool::stream`].
const PIPELINE_CHUNKS_PER_WORKER: usize = 4;
/// Minimum pipelined chunk size (items), amortizing channel round-trips.
const MIN_PIPELINE_CHUNK: usize = 16;
/// Smallest burst worth fanning `ref(B)` hashing out to the pool; below
/// this the event-loop thread hashes faster than the channel round-trip.
const MIN_HASH_FANOUT: usize = 8;

/// In-order cursor over a pipelined dispatch's verdicts (see
/// [`VerifyPool::stream`]). Chunks arriving out of slot order are
/// buffered; dropping the cursor drains stragglers so the next dispatch
/// starts with an empty verdict channel.
struct VerdictStream<'a> {
    verdicts: &'a Receiver<VerifyVerdicts>,
    /// Chunks dispatched but not yet received.
    outstanding: usize,
    /// Early chunks, keyed by slot.
    reorder: BTreeMap<usize, Vec<bool>>,
    next_slot: usize,
    current: std::vec::IntoIter<bool>,
}

impl VerdictStream<'_> {
    /// The next verdict in item order (blocks on the pool as needed).
    /// Must be called exactly once per dispatched item.
    fn next_verdict(&mut self) -> bool {
        loop {
            if let Some(verdict) = self.current.next() {
                return verdict;
            }
            if let Some(chunk) = self.reorder.remove(&self.next_slot) {
                self.next_slot += 1;
                self.current = chunk.into_iter();
                continue;
            }
            let (slot, verdicts) = self.verdicts.recv().expect("workers alive");
            self.outstanding -= 1;
            self.reorder.insert(slot, verdicts);
        }
    }
}

impl Drop for VerdictStream<'_> {
    fn drop(&mut self) {
        while self.outstanding > 0 {
            let _ = self.verdicts.recv();
            self.outstanding -= 1;
        }
    }
}

impl Drop for VerifyPool {
    fn drop(&mut self) {
        // Closing the job channel is the shutdown signal.
        self.jobs = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The gossip module of Algorithm 1: builds the local DAG `G` and the
/// current block `B`.
///
/// # Examples
///
/// ```
/// use dagbft_core::{Gossip, GossipConfig, NetCommand, NetMessage};
/// use dagbft_crypto::{KeyRegistry, ServerId};
///
/// let registry = KeyRegistry::generate(2, 1);
/// let mut alice = Gossip::new(
///     ServerId::new(0),
///     GossipConfig::for_n(2),
///     registry.signer(ServerId::new(0)).unwrap(),
///     registry.verifier(),
/// );
/// let (block, commands) = alice.disseminate(vec![], 0);
/// assert!(matches!(&commands[0], NetCommand::Broadcast { .. }));
/// assert!(alice.dag().contains(&block.block_ref()));
/// ```
#[derive(Debug)]
pub struct Gossip {
    me: ServerId,
    config: GossipConfig,
    signer: Signer,
    verifier: Verifier,
    dag: BlockDag,
    /// Sequence number of the block currently under construction.
    next_seq: SeqNum,
    /// `B.preds` of the block currently under construction (line 8 appends
    /// here, line 18 re-initializes with the parent reference).
    current_preds: Vec<BlockRef>,
    /// The `blks` buffer of received, not-yet-valid blocks (line 3).
    pending: BTreeMap<BlockRef, PendingBlock>,
    /// Reverse dependency index: missing predecessor → pending blocks
    /// waiting on it (incremental engine only).
    waiters: BTreeMap<BlockRef, BTreeSet<BlockRef>>,
    /// Missing predecessor → forward-request state.
    missing: BTreeMap<BlockRef, FwdState>,
    /// Blocks rejected as permanently invalid, with the reason — kept for
    /// auditing (the paper notes accountability as an extension, §6).
    rejected: Vec<(BlockRef, InvalidBlockError)>,
    /// References known to be permanently un-admittable: rejected blocks
    /// plus, transitively, every buffered block that references one — the
    /// "never promotable" predicate the eviction policy sorts by.
    stranded_refs: BTreeSet<BlockRef>,
    stats: GossipStats,
    /// Wave-batched verification (index engines).
    batch_verifier: BatchVerifier,
    /// Worker pool, present only in [`AdmissionMode::Parallel`].
    pool: Option<VerifyPool>,
    wave_stats: WaveStats,
    /// Receipt ordinal source for [`PendingBlock::arrival`].
    arrivals: u64,
    /// Eviction order over the pending buffer:
    /// `(rank, arrival, ref)` — known-stranded blocks (a rejected
    /// predecessor) sort first, then blocks of deprioritized builders,
    /// then oldest arrival. Kept in lockstep with `pending` so enforcing
    /// the cap is O(log) per block.
    eviction_queue: BTreeSet<(u8, u64, BlockRef)>,
    /// Accountability log of cap evictions, in eviction order.
    evictions: Vec<EvictionEvent>,
    /// `Some` while inside a `begin_burst()`/`end_burst()` bracket.
    burst: Option<BurstState>,
    /// The adversarial peer-defense engine (see [`crate::defense`]).
    defense: PeerDefense,
    /// Logical time of the last timed entry point — what interior paths
    /// (settling, eviction) stamp defense offenses with, since they have
    /// no `now` parameter of their own.
    clock: TimeMs,
}

/// State accumulated inside a deferred-admission bracket.
#[derive(Debug, Default)]
struct BurstState {
    /// Blocks buffered during this bracket (received minus duplicates),
    /// in arrival order — the indexing order of the incremental branch.
    arrived: Vec<BlockRef>,
}

/// Result of the validity checks of Definition 3.3 against the current DAG.
enum Validity {
    /// All three conditions hold.
    Valid,
    /// Condition (iii) cannot be decided yet: some predecessors are unknown.
    MissingPreds,
    /// The block can never become valid.
    Invalid(InvalidBlockError),
}

impl Gossip {
    /// Creates a gossip instance for server `me`.
    pub fn new(me: ServerId, config: GossipConfig, signer: Signer, verifier: Verifier) -> Self {
        debug_assert_eq!(signer.id(), me);
        let (batch_verifier, pool) = Self::verification_engine(config.admission, &verifier);
        Gossip {
            me,
            config,
            signer,
            verifier,
            dag: BlockDag::new(),
            next_seq: SeqNum::ZERO,
            current_preds: Vec::new(),
            pending: BTreeMap::new(),
            waiters: BTreeMap::new(),
            missing: BTreeMap::new(),
            rejected: Vec::new(),
            stranded_refs: BTreeSet::new(),
            stats: GossipStats::default(),
            batch_verifier,
            pool,
            wave_stats: WaveStats::default(),
            arrivals: 0,
            eviction_queue: BTreeSet::new(),
            evictions: Vec::new(),
            burst: None,
            defense: PeerDefense::new(config.defense),
            clock: 0,
        }
    }

    /// Builds the admission-mode-specific verification machinery: the
    /// batch handle always, the worker pool only for parallel admission.
    fn verification_engine(
        admission: AdmissionMode,
        verifier: &Verifier,
    ) -> (BatchVerifier, Option<VerifyPool>) {
        let batch_verifier = verifier.batch();
        let pool = match admission {
            AdmissionMode::Parallel { workers } => Some(VerifyPool::new(workers, &batch_verifier)),
            AdmissionMode::Index | AdmissionMode::Scan => None,
        };
        (batch_verifier, pool)
    }

    /// Resumes gossip from a persisted DAG after a crash (§7
    /// crash–recovery discussion).
    ///
    /// The next block continues this server's own chain: its sequence
    /// number follows the highest own block in `dag`, its predecessors are
    /// the own chain tip plus every block of `dag` the chain has not yet
    /// referenced (so messages received just before the crash still get
    /// delivered). Resuming from a *stale* image — one missing own blocks
    /// that already reached the network — would re-use sequence numbers,
    /// i.e. equivocate; persisting the DAG after each own dissemination
    /// (the `dag()` accessor plus `recovery::persist_dag`) avoids this, as
    /// the paper prescribes ("assuming that they persist enough
    /// information").
    pub fn resume(
        me: ServerId,
        config: GossipConfig,
        signer: Signer,
        verifier: Verifier,
        dag: BlockDag,
    ) -> Self {
        let own_tip = dag.height_of(me).map(|height| {
            let at = dag.blocks_at(me, height);
            debug_assert_eq!(at.len(), 1, "own chain must not be forked");
            at[0]
        });
        let next_seq = dag
            .height_of(me)
            .map(|height| height.next())
            .unwrap_or(SeqNum::ZERO);
        // Everything the own chain has referenced is an ancestor of the
        // tip; reference the rest now, in topological order.
        let referenced: std::collections::BTreeSet<BlockRef> = match own_tip {
            Some(tip) => {
                let mut set = dag.ancestors(&tip);
                set.insert(tip);
                set
            }
            None => Default::default(),
        };
        let mut current_preds: Vec<BlockRef> = Vec::new();
        if let Some(tip) = own_tip {
            current_preds.push(tip);
        }
        for block_ref in dag.refs() {
            if !referenced.contains(block_ref) {
                current_preds.push(*block_ref);
            }
        }
        let (batch_verifier, pool) = Self::verification_engine(config.admission, &verifier);
        let mut gossip = Gossip {
            me,
            config,
            signer,
            verifier,
            dag,
            next_seq,
            current_preds,
            pending: BTreeMap::new(),
            waiters: BTreeMap::new(),
            missing: BTreeMap::new(),
            rejected: Vec::new(),
            stranded_refs: BTreeSet::new(),
            stats: GossipStats::default(),
            batch_verifier,
            pool,
            wave_stats: WaveStats::default(),
            arrivals: 0,
            eviction_queue: BTreeSet::new(),
            evictions: Vec::new(),
            burst: None,
            defense: PeerDefense::new(config.defense),
            clock: 0,
        };
        // Re-derive the durable score component from the recovered DAG:
        // every equivocation provable from `G` before the crash is
        // provable from it now (`recovery::persist_dag` round-trips the
        // whole DAG), so convicted builders stay deprioritized across
        // restarts. The volatile component is intentionally transient —
        // it models resource pressure on *this* process, which a restart
        // resets.
        let seeds: Vec<(ServerId, u64)> = gossip
            .dag
            .known_servers()
            .filter(|server| **server != me)
            .map(|server| {
                let extra: u64 = gossip
                    .dag
                    .equivocations(*server)
                    .iter()
                    .map(|(_, refs)| (refs.len() - 1) as u64)
                    .sum();
                (*server, extra)
            })
            .collect();
        for (server, count) in seeds {
            gossip.defense.seed_equivocations(server, count, 0);
        }
        gossip
    }

    /// The server this instance runs as.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// Read access to the local block DAG `G`.
    pub fn dag(&self) -> &BlockDag {
        &self.dag
    }

    /// Activity counters.
    pub fn stats(&self) -> &GossipStats {
        &self.stats
    }

    /// Wave-batched verification counters (zero under the scan oracle).
    pub fn wave_stats(&self) -> &WaveStats {
        &self.wave_stats
    }

    /// Number of buffered, not-yet-valid blocks.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Blocks rejected as permanently invalid, with their reasons — the raw
    /// material for accountability mechanisms (§6 of the paper).
    pub fn rejected(&self) -> &[(BlockRef, InvalidBlockError)] {
        &self.rejected
    }

    /// Pending-buffer evictions performed so far, in eviction order (the
    /// `FWD`-accountability trail of [`GossipConfig::pending_cap`]).
    pub fn evictions(&self) -> &[EvictionEvent] {
        &self.evictions
    }

    /// The peer-defense engine: scores, bans, and the `DefenseEvent`
    /// audit trail (inert unless [`GossipConfig::defense`] enables it).
    pub fn defense(&self) -> &PeerDefense {
        &self.defense
    }

    /// Reports `count` malformed frames from `peer` (fed by the
    /// transport's decode-error counters — a wire-level offense the
    /// gossip layer cannot observe itself).
    pub fn note_malformed_frames(&mut self, peer: ServerId, count: u64, now: TimeMs) {
        self.clock = self.clock.max(now);
        if peer == self.me {
            return;
        }
        for _ in 0..count {
            self.defense
                .note_offense(peer, Offense::MalformedFrame, now);
        }
    }

    /// Sequence number the next disseminated block will carry.
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Handles a message from `from`, returning transport commands
    /// (block handling: lines 4–13 of Algorithm 1).
    pub fn on_message(
        &mut self,
        from: ServerId,
        message: NetMessage,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        match message {
            NetMessage::Block(block) => self.on_block_from(from, block, now),
            NetMessage::FwdRequest(block_ref) => {
                // A banned peer's FWD requests are dropped too: answering
                // would hand it a block-sized reply per tiny request — an
                // amplification channel the ban exists to close.
                if self.defense.is_banned(from, now) {
                    return Vec::new();
                }
                self.on_fwd_request(from, block_ref)
            }
        }
    }

    /// Handles a received block (lines 4–11).
    ///
    /// Inside a [`Gossip::begin_burst`] bracket this only buffers and
    /// indexes the block (returning no commands); promotion,
    /// verification, cap enforcement, and `FWD` emission are deferred to
    /// [`Gossip::end_burst`].
    pub fn on_block(&mut self, block: Block, now: TimeMs) -> Vec<NetCommand> {
        let from = block.builder();
        self.on_block_from(from, block, now)
    }

    /// [`Gossip::on_block`] with the delivering peer identified — the
    /// entry point the defense layer gates. `from` is the transport-level
    /// sender (authenticated by the connection), *not* the claimed
    /// builder: offenses that precede signature verification (floods,
    /// duplicates, junk) are charged to the deliverer, since a forged
    /// builder field must not let an attacker frame an honest server.
    pub fn on_block_from(&mut self, from: ServerId, block: Block, now: TimeMs) -> Vec<NetCommand> {
        self.clock = self.clock.max(now);
        if from != self.me {
            match self.defense.admit_block(from, block.wire_len() as u64, now) {
                AdmitVerdict::Admit => {}
                // Dropped before any hashing or verification: throttled
                // blocks are recoverable later via FWD; banned peers'
                // blocks are not wanted at all until the ban lapses.
                AdmitVerdict::Throttle | AdmitVerdict::Ban => return Vec::new(),
            }
        }
        self.stats.blocks_received += 1;
        let block_ref = block.block_ref();
        if self.dag.contains(&block_ref) || self.pending.contains_key(&block_ref) {
            self.stats.duplicate_blocks += 1;
            self.penalize(from, Offense::DuplicateFlood);
            return Vec::new();
        }
        if self.burst.is_some() {
            self.buffer_for_burst(from, block_ref, block);
            return Vec::new();
        }
        match self.config.admission {
            AdmissionMode::Index | AdmissionMode::Parallel { .. } => {
                self.admit_indexed(from, block_ref, block)
            }
            AdmissionMode::Scan => {
                self.insert_pending(from, block_ref, block, BTreeSet::new());
                self.promote_pending_scan();
                self.refresh_missing_scan();
            }
        }
        let evicted = self.enforce_pending_cap() + self.enforce_deprioritized_allowance();
        if evicted > 0 && self.config.admission == AdmissionMode::Scan {
            // Eviction changed the pending set; rebuild the FWD index the
            // scan way so traffic matches the index engines' inline
            // bookkeeping.
            self.refresh_missing_scan();
        }
        self.collect_fwd_commands(now)
    }

    /// Charges one offense to `peer` at the current logical clock (no-op
    /// for our own actions and while the defense is disabled).
    fn penalize(&mut self, peer: ServerId, offense: Offense) {
        if peer == self.me {
            return;
        }
        let clock = self.clock;
        self.defense.note_offense(peer, offense, clock);
    }

    /// Opens a deferred-admission bracket: subsequent
    /// [`Gossip::on_block`] calls only index, and [`Gossip::end_burst`]
    /// runs one cross-cascade promotion over everything received (see
    /// the module docs).
    ///
    /// # Panics
    ///
    /// Panics if a bracket is already open.
    pub fn begin_burst(&mut self) {
        assert!(self.burst.is_none(), "admission burst already open");
        self.burst = Some(BurstState::default());
    }

    /// Closes the deferred-admission bracket: computes the full ready
    /// frontier across all cascades, verifies it wave by wave in
    /// `(builder, seq, ref)` order, promotes, enforces the pending cap,
    /// and emits any due `FWD` requests.
    ///
    /// # Panics
    ///
    /// Panics if no bracket is open.
    pub fn end_burst(&mut self, now: TimeMs) -> Vec<NetCommand> {
        self.clock = self.clock.max(now);
        let burst = self.burst.take().expect("no admission burst open");
        // Nothing new arrived (duplicates, FWD requests): nothing can
        // have become ready, so skip promotion entirely — a duplicate
        // flood must not buy O(pending) work per bracket.
        let verified = if burst.arrived.is_empty() {
            0
        } else {
            match self.config.admission {
                AdmissionMode::Index | AdmissionMode::Parallel { .. } => {
                    self.promote_burst_indexed(&burst.arrived)
                }
                AdmissionMode::Scan => {
                    let verified = self.promote_burst_scan();
                    self.refresh_missing_scan();
                    verified
                }
            }
        };
        self.batch_verifier.note_burst(verified);
        self.wave_stats.bursts += 1;
        self.wave_stats.burst_blocks += burst.arrived.len() as u64;
        let evicted = self.enforce_pending_cap() + self.enforce_deprioritized_allowance();
        if evicted > 0 && self.config.admission == AdmissionMode::Scan {
            self.refresh_missing_scan();
        }
        self.collect_fwd_commands(now)
    }

    /// Delivers a whole burst of blocks through one
    /// [`Gossip::begin_burst`]/[`Gossip::end_burst`] bracket.
    ///
    /// Under [`AdmissionMode::Parallel`] the burst's `ref(B)` hashes —
    /// deferred at decode time — are computed on the worker pool while
    /// this thread buffers the blocks, so the receive path no longer
    /// pays one serial SHA-256 per block.
    pub fn on_block_burst(
        &mut self,
        blocks: impl IntoIterator<Item = Block>,
        now: TimeMs,
    ) -> Vec<NetCommand> {
        self.begin_burst();
        if self.pool.is_some() {
            let blocks: Vec<Block> = blocks.into_iter().collect();
            self.pool
                .as_ref()
                .expect("checked above")
                .hash_blocks(&blocks);
            for block in blocks {
                let commands = self.on_block(block, now);
                debug_assert!(commands.is_empty(), "bracketed on_block defers commands");
            }
        } else {
            for block in blocks {
                let commands = self.on_block(block, now);
                debug_assert!(commands.is_empty(), "bracketed on_block defers commands");
            }
        }
        self.end_burst(now)
    }

    /// Buffers one block inside a burst bracket — O(1) beyond the insert:
    /// no verification, no promotion, and (unlike per-message indexing)
    /// no per-predecessor bookkeeping. The whole burst's dependency
    /// analysis happens once, in [`Gossip::end_burst`]'s single pass.
    fn buffer_for_burst(&mut self, from: ServerId, block_ref: BlockRef, block: Block) {
        // The block is no longer wanted from the network (the FWD view
        // is rebuilt wholesale at `end_burst`; dropping the entry early
        // keeps the map small).
        self.missing.remove(&block_ref);
        self.insert_pending(from, block_ref, block, BTreeSet::new());
        self.burst
            .as_mut()
            .expect("bracket open")
            .arrived
            .push(block_ref);
    }

    /// Handles `FWD ref(B)` from `from`: if `B ∈ G`, send it back
    /// (lines 12–13). The reply shares the stored block's body and cached
    /// wire bytes — no deep clone, no re-encode.
    pub fn on_fwd_request(&mut self, from: ServerId, block_ref: BlockRef) -> Vec<NetCommand> {
        self.stats.fwd_received += 1;
        match self.dag.get(&block_ref) {
            Some(block) => {
                self.stats.fwd_answered += 1;
                vec![NetCommand::SendTo {
                    to: from,
                    message: NetMessage::Block(block.clone()),
                }]
            }
            None => Vec::new(),
        }
    }

    /// Periodic timer: re-issues `FWD` requests whose retry interval has
    /// elapsed.
    pub fn on_tick(&mut self, now: TimeMs) -> Vec<NetCommand> {
        self.clock = self.clock.max(now);
        self.collect_fwd_commands(now)
    }

    /// Seals and disseminates the current block with `requests` injected
    /// into `B.rs` (lines 14–18). Returns the built block and the broadcast
    /// command. The block is encoded exactly once (at build); the broadcast
    /// command and the DAG share its body by reference count.
    pub fn disseminate(
        &mut self,
        requests: Vec<LabeledRequest>,
        _now: TimeMs,
    ) -> (Block, Vec<NetCommand>) {
        let preds = std::mem::take(&mut self.current_preds);
        let block = Block::build(self.me, self.next_seq, preds, requests, &self.signer);
        // Line 16: insert the own block. Valid by construction (Lemma A.4):
        // signed by us, parent is our previous block, preds all validated.
        self.dag
            .insert(block.clone())
            .expect("own block preds are in the DAG");
        self.stats.blocks_built += 1;
        // Line 18: next block starts from the parent reference.
        self.current_preds = vec![block.block_ref()];
        self.next_seq = self.next_seq.next();
        let commands = vec![NetCommand::Broadcast {
            message: NetMessage::Block(block.clone()),
        }];
        (block, commands)
    }

    /// Indexed admission: index the new block's missing predecessors, or
    /// promote it — and cascade through its waiters — if none are
    /// missing. Equivalent to the scan engine (see `promote_pending_scan`)
    /// but costs O(preds · log) per block instead of a full-buffer rescan.
    fn admit_indexed(&mut self, from: ServerId, block_ref: BlockRef, block: Block) {
        if self.index_block(from, block_ref, block) {
            self.promote_cascade(block_ref);
        }
    }

    /// Buffers `block` and indexes its missing predecessors (reverse
    /// dependency index plus `FWD` bookkeeping); returns whether the
    /// block is immediately ready for promotion.
    fn index_block(&mut self, from: ServerId, block_ref: BlockRef, block: Block) -> bool {
        // The block is no longer wanted from the network: it is now either
        // pending (indexed below) or about to be promoted.
        self.missing.remove(&block_ref);
        let missing: BTreeSet<BlockRef> = block
            .preds()
            .iter()
            .filter(|p| !self.dag.contains(p))
            .copied()
            .collect();
        let ready = missing.is_empty();
        for pred in &missing {
            self.waiters.entry(*pred).or_default().insert(block_ref);
            // Request the predecessor from the network unless it is already
            // buffered (then its own admission is what we're waiting for).
            if !self.pending.contains_key(pred) {
                self.missing
                    .entry(*pred)
                    .and_modify(|state| {
                        state.candidates.insert(block.builder());
                    })
                    .or_insert_with(|| FwdState {
                        candidates: BTreeSet::from([block.builder()]),
                        last_sent: None,
                        attempts: 0,
                    });
            }
        }
        self.insert_pending(from, block_ref, block, missing);
        ready
    }

    /// Inserts a block into the pending buffer, stamping its arrival and
    /// mirroring it into the eviction queue.
    fn insert_pending(
        &mut self,
        from: ServerId,
        block_ref: BlockRef,
        block: Block,
        missing: BTreeSet<BlockRef>,
    ) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        let stranded = block.preds().iter().any(|p| self.stranded_refs.contains(p));
        let rank = if stranded {
            RANK_STRANDED
        } else if self.defense.is_deprioritized(block.builder()) {
            RANK_DEPRIORITIZED
        } else {
            RANK_NORMAL
        };
        self.eviction_queue.insert((rank, arrival, block_ref));
        self.pending.insert(
            block_ref,
            PendingBlock {
                block,
                from,
                missing,
                arrival,
                stranded,
                rank,
            },
        );
        self.stats.pending_peak = self.stats.pending_peak.max(self.pending.len());
        if stranded {
            // Publish the doom (later arrivals citing this block strand
            // at insertion) and re-rank earlier-arrived waiters, which
            // are doomed too. Inside an index-engine bracket the waiters
            // walk is deferred — the reverse index is not yet built for
            // the burst — to `index_arrived`/the post-cascade rebuild;
            // the scan oracle's rescan needs no index, so it marks
            // eagerly either way.
            self.stranded_refs.insert(block_ref);
            if self.burst.is_none() || self.config.admission == AdmissionMode::Scan {
                self.mark_never_promotable(block_ref);
            }
        }
    }

    /// Removes a block from the pending buffer and the eviction queue
    /// (the stored `rank` reconstructs the queue key exactly).
    fn take_pending(&mut self, block_ref: &BlockRef) -> PendingBlock {
        let entry = self.pending.remove(block_ref).expect("block pending");
        let removed = self
            .eviction_queue
            .remove(&(entry.rank, entry.arrival, *block_ref));
        debug_assert!(removed, "eviction queue mirrors pending");
        entry
    }

    /// Promotes `start` and every pending block its admission unblocks,
    /// always taking the smallest ready reference first — the same
    /// deterministic order the scan engine's min-first rescan produces.
    ///
    /// Verification is pipelined in *waves*: whenever the front of the
    /// ready set has no signature verdict yet, every not-yet-verified
    /// ready block is checked in one [`BatchVerifier`] pass (fanned across
    /// the worker pool under [`AdmissionMode::Parallel`]). Verdicts are a
    /// pure per-block function of cached bytes, so pre-computing them in
    /// batches cannot change any promotion decision — only amortize its
    /// cost; each ready block is still verified exactly once, like the
    /// sequential engines.
    fn promote_cascade(&mut self, start: BlockRef) {
        let mut ready: BTreeSet<BlockRef> = BTreeSet::from([start]);
        // `Some(ok)` — batch-verified; `None` — no signature check needed
        // (unknown builder: `validate_with` rejects before the signature,
        // exactly as the per-block engines never reach the verifier).
        let mut verdicts: BTreeMap<BlockRef, Option<bool>> = BTreeMap::new();
        while let Some(front) = ready.first() {
            if !verdicts.contains_key(front) {
                self.verify_wave(&ready, &mut verdicts);
            }
            let block_ref = ready.pop_first().expect("front exists");
            let verdict = verdicts.remove(&block_ref).expect("wave verified front");
            let entry = self.take_pending(&block_ref);
            self.settle_ready(block_ref, entry, verdict, &mut ready);
        }
    }

    /// Applies the validation outcome for one ready block (all preds in
    /// the DAG, signature verdict pre-computed where applicable): inserts
    /// and references it, or records the rejection and re-lists its
    /// reference as missing for any surviving waiters. Blocks whose last
    /// missing dependency this settles are added to `unlocked` — the
    /// cascade's ready set, or the burst engine's next frontier.
    fn settle_ready(
        &mut self,
        block_ref: BlockRef,
        entry: PendingBlock,
        verdict: Option<bool>,
        unlocked: &mut BTreeSet<BlockRef>,
    ) {
        let builder = entry.block.builder();
        let seq = entry.block.seq();
        let from = entry.from;
        match self.validate_with(&entry.block, verdict) {
            Validity::Valid => {
                self.dag.insert(entry.block).expect("preds checked");
                self.note_admitted(builder, seq);
                // Line 8: B.preds := B.preds · [ref(B')]. Appending once
                // per block is Lemma A.6 (correct servers reference a
                // block at most once).
                self.current_preds.push(block_ref);
                self.stats.blocks_validated += 1;
                self.missing.remove(&block_ref);
                // Wake the waiters: drop the satisfied dependency and
                // queue any block that just became fully satisfied.
                if let Some(waiting) = self.waiters.remove(&block_ref) {
                    for waiter in waiting {
                        if let Some(pending) = self.pending.get_mut(&waiter) {
                            pending.missing.remove(&block_ref);
                            if pending.missing.is_empty() {
                                unlocked.insert(waiter);
                            }
                        }
                    }
                }
            }
            Validity::Invalid(reason) => {
                self.record_rejection(block_ref, reason);
                self.penalize(from, Offense::InvalidBlock);
                self.missing.remove(&block_ref);
                // Blocks referencing the rejected block keep waiting
                // (its ref can never enter the DAG); it counts as
                // missing-from-the-network again, exactly as the scan
                // engine's rebuild would re-list it.
                if let Some(waiting) = self.waiters.get(&block_ref) {
                    let candidates: BTreeSet<ServerId> = waiting
                        .iter()
                        .filter_map(|w| self.pending.get(w))
                        .map(|p| p.block.builder())
                        .collect();
                    if !candidates.is_empty() {
                        self.missing.insert(
                            block_ref,
                            FwdState {
                                candidates,
                                last_sent: None,
                                attempts: 0,
                            },
                        );
                    }
                }
            }
            Validity::MissingPreds => {
                unreachable!("ready block had all preds in the DAG")
            }
        }
    }

    /// Accounting shared by every rejection path: the audit log, the
    /// counter, and publishing the reference as never-promotable.
    fn note_rejection(&mut self, block_ref: BlockRef, reason: InvalidBlockError) {
        self.stats.invalid_blocks += 1;
        self.rejected.push((block_ref, reason));
        self.stranded_refs.insert(block_ref);
    }

    /// [`Gossip::note_rejection`] plus the engine-appropriate transitive
    /// marking — the rejection entry point for every non-burst path (the
    /// burst cascade walks its own adjacency instead of the waiters map,
    /// which is stale mid-bracket).
    fn record_rejection(&mut self, block_ref: BlockRef, reason: InvalidBlockError) {
        self.note_rejection(block_ref, reason);
        self.mark_never_promotable(block_ref);
    }

    /// Marks one buffered block never-promotable: flips its eviction
    /// rank and publishes its reference (dooming later arrivals that
    /// cite it). Returns whether this was a fresh marking — `false` for
    /// non-buffered references and already-marked blocks, so traversals
    /// can use it as their visited check.
    fn strand_pending(&mut self, block_ref: BlockRef) -> bool {
        let Some(pending) = self.pending.get_mut(&block_ref) else {
            return false;
        };
        if pending.stranded {
            return false;
        }
        pending.stranded = true;
        let arrival = pending.arrival;
        let old_rank = pending.rank;
        pending.rank = RANK_STRANDED;
        self.eviction_queue.remove(&(old_rank, arrival, block_ref));
        self.eviction_queue
            .insert((RANK_STRANDED, arrival, block_ref));
        self.stranded_refs.insert(block_ref);
        true
    }

    /// Re-ranks every normally ranked pending block of a freshly
    /// deprioritized builder to [`RANK_DEPRIORITIZED`] — called once, on
    /// the builder's first proven equivocation, so the eviction queue and
    /// the stored ranks stay exact under mid-life transitions.
    fn requeue_builder(&mut self, builder: ServerId) {
        let refs: Vec<(u64, BlockRef)> = self
            .pending
            .iter()
            .filter(|(_, p)| p.rank == RANK_NORMAL && p.block.builder() == builder)
            .map(|(r, p)| (p.arrival, *r))
            .collect();
        for (arrival, block_ref) in refs {
            self.eviction_queue
                .remove(&(RANK_NORMAL, arrival, block_ref));
            self.eviction_queue
                .insert((RANK_DEPRIORITIZED, arrival, block_ref));
            self.pending
                .get_mut(&block_ref)
                .expect("iterating live refs")
                .rank = RANK_DEPRIORITIZED;
        }
    }

    /// Post-admission equivocation check: if `builder` now has more than
    /// one block at `seq`, that is a proof of equivocation (Figure 3) —
    /// charge the durable offense and, on the first conviction, re-rank
    /// the builder's buffered blocks.
    fn note_admitted(&mut self, builder: ServerId, seq: SeqNum) {
        if !self.defense.is_enabled() || builder == self.me {
            return;
        }
        if self.dag.blocks_at(builder, seq).len() > 1 {
            let first_conviction = !self.defense.is_deprioritized(builder);
            self.penalize(builder, Offense::Equivocation);
            if first_conviction {
                self.requeue_builder(builder);
            }
        }
    }

    /// Marks `root` — and, transitively, every buffered block referencing
    /// it — as never-promotable, re-ranking affected pending blocks to
    /// the front of the eviction order. The index engines walk the
    /// reverse dependency index; the scan oracle rescans the pending
    /// buffer to a fixed point (its usual cost model). Later arrivals
    /// referencing a marked reference are stranded at insertion.
    fn mark_never_promotable(&mut self, root: BlockRef) {
        self.stranded_refs.insert(root);
        match self.config.admission {
            AdmissionMode::Index | AdmissionMode::Parallel { .. } => {
                self.strand_pending(root);
                let mut stack = vec![root];
                while let Some(r) = stack.pop() {
                    let waiting: Vec<BlockRef> = self
                        .waiters
                        .get(&r)
                        .into_iter()
                        .flatten()
                        .copied()
                        .collect();
                    for waiter in waiting {
                        if self.strand_pending(waiter) {
                            stack.push(waiter);
                        }
                    }
                }
            }
            AdmissionMode::Scan => {
                self.strand_pending(root);
                loop {
                    let newly: Vec<BlockRef> = self
                        .pending
                        .iter()
                        .filter(|(_, p)| {
                            !p.stranded
                                && p.block
                                    .preds()
                                    .iter()
                                    .any(|q| self.stranded_refs.contains(q))
                        })
                        .map(|(r, _)| *r)
                        .collect();
                    if newly.is_empty() {
                        break;
                    }
                    for block_ref in newly {
                        self.strand_pending(block_ref);
                    }
                }
            }
        }
    }

    /// Cross-cascade burst promotion (index engines), in one of two
    /// byte-equivalent gears picked by burst-vs-backlog size:
    ///
    /// * **Whole-buffer analysis** (the burst dominates the buffer): one
    ///   pass builds missing-predecessor *counts* and a reverse
    ///   adjacency of `Vec`s — an order of magnitude cheaper than the
    ///   per-block `BTreeSet` surgery the incremental index pays per
    ///   delivery. The canonical incremental index is rebuilt for the
    ///   few survivors afterwards. Every whole-buffer pass is amortized
    ///   by the burst's size.
    /// * **Incremental indexing** (a small burst against a large — e.g.
    ///   flood-filled — backlog): only the arrived blocks are indexed,
    ///   the per-message way, so a capped byzantine backlog cannot
    ///   amplify per-bracket cost to O(pending).
    ///
    /// Either way, promotion repeatedly takes the whole ready frontier
    /// as one wave in canonical `(builder, seq, ref)` order and
    /// batch-verifies it — pipelined across the worker pool under
    /// [`AdmissionMode::Parallel`] — before settling in wave order.
    /// Returns the number of signatures checked.
    fn promote_burst_indexed(&mut self, arrived: &[BlockRef]) -> u64 {
        if arrived.len() * DEFERRED_ANALYSIS_FACTOR < self.pending.len() {
            return self.promote_burst_incremental(arrived);
        }
        // Hash maps, not ordered maps: these are keyed lookups only —
        // never iterated — so map order can't leak into any observable,
        // and hashing a 32-byte ref beats walking a comparison tree on
        // the per-edge hot path. Wave order (the only place order
        // matters) comes from `BTreeSet` frontiers + `wave_order`.
        let mut counts: HashMap<BlockRef, usize> = HashMap::with_capacity(self.pending.len());
        let mut adjacency: HashMap<BlockRef, Vec<BlockRef>> =
            HashMap::with_capacity(self.pending.len());
        let mut frontier: BTreeSet<BlockRef> = BTreeSet::new();
        for (block_ref, pending) in &self.pending {
            let mut count = 0;
            for pred in pending.block.preds() {
                if !self.dag.contains(pred) {
                    count += 1;
                    adjacency.entry(*pred).or_default().push(*block_ref);
                }
            }
            if count == 0 {
                frontier.insert(*block_ref);
            } else {
                counts.insert(*block_ref, count);
            }
        }
        let mut verified = 0;
        let mut wave = self.wave_order(frontier);
        while !wave.is_empty() {
            let mut unlocked = BTreeSet::new();
            verified += self.promote_wave_by(&wave, &mut |gossip, block_ref, entry, verdict| {
                gossip.settle_burst(
                    block_ref,
                    entry,
                    verdict,
                    &mut adjacency,
                    &mut counts,
                    &mut unlocked,
                )
            });
            wave = self.wave_order(unlocked);
        }
        self.rebuild_dependency_index();
        verified
    }

    /// The small-burst gear: index just the arrived blocks the
    /// per-message way (in arrival order, so `FWD` bookkeeping matches
    /// the incremental engine exactly), then promote the resulting roots
    /// with the shared wave scheduler over the maintained waiters index.
    fn promote_burst_incremental(&mut self, arrived: &[BlockRef]) -> u64 {
        let mut frontier: BTreeSet<BlockRef> = BTreeSet::new();
        for block_ref in arrived {
            if self.index_arrived(*block_ref) {
                frontier.insert(*block_ref);
            }
        }
        let mut verified = 0;
        let mut wave = self.wave_order(frontier);
        while !wave.is_empty() {
            let mut unlocked = BTreeSet::new();
            verified += self.promote_wave_by(&wave, &mut |gossip, block_ref, entry, verdict| {
                gossip.settle_ready(block_ref, entry, verdict, &mut unlocked)
            });
            wave = self.wave_order(unlocked);
        }
        verified
    }

    /// Indexes one block that `buffer_for_burst` parked earlier: the
    /// missing-predecessor set, the reverse waiters index, and the `FWD`
    /// view, exactly as [`Gossip::index_block`] would have at delivery
    /// time. Returns whether the block is ready for promotion.
    fn index_arrived(&mut self, block_ref: BlockRef) -> bool {
        let block = self.pending[&block_ref].block.clone();
        let missing: BTreeSet<BlockRef> = block
            .preds()
            .iter()
            .filter(|p| !self.dag.contains(p))
            .copied()
            .collect();
        let ready = missing.is_empty();
        for pred in &missing {
            self.waiters.entry(*pred).or_default().insert(block_ref);
            if !self.pending.contains_key(pred) {
                self.missing
                    .entry(*pred)
                    .and_modify(|state| {
                        state.candidates.insert(block.builder());
                    })
                    .or_insert_with(|| FwdState {
                        candidates: BTreeSet::from([block.builder()]),
                        last_sent: None,
                        attempts: 0,
                    });
            }
        }
        self.pending
            .get_mut(&block_ref)
            .expect("arrived block pending")
            .missing = missing;
        // Stranded propagation deferred from buffering: now that this
        // block (and everything before it) is indexed, the waiters walk
        // is complete for already-indexed ancestors; later arrivals
        // self-check against `stranded_refs` at their own turn.
        if block.preds().iter().any(|p| self.stranded_refs.contains(p)) {
            self.mark_never_promotable(block_ref);
        }
        ready
    }

    /// Restores the incremental engine's canonical state for whatever the
    /// burst cascade left pending: per-block missing sets, the reverse
    /// waiters index, and the `FWD` view — so per-message deliveries
    /// after the bracket resume on exactly the state they would have
    /// maintained themselves.
    fn rebuild_dependency_index(&mut self) {
        self.waiters.clear();
        let refs: Vec<BlockRef> = self.pending.keys().copied().collect();
        for block_ref in refs {
            let missing: BTreeSet<BlockRef> = self.pending[&block_ref]
                .block
                .preds()
                .iter()
                .filter(|p| !self.dag.contains(p))
                .copied()
                .collect();
            for pred in &missing {
                self.waiters.entry(*pred).or_default().insert(block_ref);
            }
            self.pending
                .get_mut(&block_ref)
                .expect("iterating live refs")
                .missing = missing;
        }
        // Close the ranking gaps deferred buffering left: any
        // never-promotable reference strands its (freshly rebuilt)
        // waiters transitively.
        let stranded_roots: Vec<BlockRef> = self
            .waiters
            .keys()
            .filter(|pred| self.stranded_refs.contains(pred))
            .copied()
            .collect();
        for root in stranded_roots {
            self.mark_never_promotable(root);
        }
        self.refresh_missing_scan();
    }

    /// Sorts a ready frontier into the canonical burst wave order,
    /// `(deprioritized, builder, seq, ref)` — same-builder runs become
    /// contiguous, which keys the verifier's per-server schedules
    /// coherently, and builders with a proven equivocation admit after
    /// every honest block of the wave (the leading key is `0` for all
    /// blocks while the defense is disabled).
    fn wave_order(&self, refs: BTreeSet<BlockRef>) -> Vec<BlockRef> {
        let mut wave: Vec<(u8, usize, u64, BlockRef)> = refs
            .into_iter()
            .map(|r| {
                let block = &self.pending[&r].block;
                let builder = block.builder();
                (
                    self.defense.is_deprioritized(builder) as u8,
                    builder.index(),
                    block.seq().value(),
                    r,
                )
            })
            .collect();
        wave.sort_unstable();
        wave.into_iter().map(|(_, _, _, r)| r).collect()
    }

    /// Verifies one burst wave (already in canonical order) and settles
    /// each block through `settle` — [`Gossip::settle_burst`] for the
    /// analysis gear, [`Gossip::settle_ready`] for the incremental gear.
    /// Returns the number of signatures checked. Blocks claiming an
    /// unknown builder are settled without a verdict — `validate_with`
    /// rejects them before the signature, exactly like the per-message
    /// engines.
    fn promote_wave_by<F>(&mut self, wave: &[BlockRef], settle: &mut F) -> u64
    where
        F: FnMut(&mut Gossip, BlockRef, PendingBlock, Option<bool>),
    {
        let items: Vec<SignedDigest> = wave
            .iter()
            .map(|r| &self.pending[r].block)
            .filter(|block| block.builder().index() < self.config.n)
            .map(|block| block.signed_digest())
            .collect();
        if !items.is_empty() {
            self.wave_stats.record(items.len());
        }
        // Take the pool out so settling (which needs `&mut self`) can
        // interleave with the in-flight verification it holds.
        let pool = self.pool.take();
        match &pool {
            Some(pool) => {
                let mut stream = pool.stream(&items);
                for block_ref in wave {
                    let entry = self.take_pending(block_ref);
                    let verdict = (entry.block.builder().index() < self.config.n)
                        .then(|| stream.next_verdict());
                    settle(self, *block_ref, entry, verdict);
                }
            }
            None => {
                let mut results = self.batch_verifier.verify_batch(&items).into_iter();
                for block_ref in wave {
                    let entry = self.take_pending(block_ref);
                    let verdict = (entry.block.builder().index() < self.config.n)
                        .then(|| results.next().expect("one verdict per item"));
                    settle(self, *block_ref, entry, verdict);
                }
            }
        }
        self.pool = pool;
        items.len() as u64
    }

    /// Burst-mode settle: identical validation outcome to
    /// [`Gossip::settle_ready`], with waiters driven by the burst's count
    /// index instead of the incremental maps (which are rebuilt wholesale
    /// after the cascade).
    fn settle_burst(
        &mut self,
        block_ref: BlockRef,
        entry: PendingBlock,
        verdict: Option<bool>,
        adjacency: &mut HashMap<BlockRef, Vec<BlockRef>>,
        counts: &mut HashMap<BlockRef, usize>,
        unlocked: &mut BTreeSet<BlockRef>,
    ) {
        let builder = entry.block.builder();
        let seq = entry.block.seq();
        let from = entry.from;
        match self.validate_with(&entry.block, verdict) {
            Validity::Valid => {
                self.dag.insert(entry.block).expect("preds checked");
                self.note_admitted(builder, seq);
                self.current_preds.push(block_ref);
                self.stats.blocks_validated += 1;
                for waiter in adjacency.remove(&block_ref).unwrap_or_default() {
                    if let Some(count) = counts.get_mut(&waiter) {
                        *count -= 1;
                        if *count == 0 {
                            counts.remove(&waiter);
                            unlocked.insert(waiter);
                        }
                    }
                }
            }
            Validity::Invalid(reason) => {
                self.note_rejection(block_ref, reason);
                self.penalize(from, Offense::InvalidBlock);
                // Everything transitively referencing the rejection is
                // never-promotable: mark along the burst adjacency (the
                // waiters map is stale mid-bracket; the FWD re-listing
                // for surviving waiters happens in the post-cascade
                // index rebuild).
                let mut stack = vec![block_ref];
                while let Some(r) = stack.pop() {
                    let waiting: Vec<BlockRef> =
                        adjacency.get(&r).into_iter().flatten().copied().collect();
                    for waiter in waiting {
                        if self.strand_pending(waiter) {
                            stack.push(waiter);
                        }
                    }
                }
            }
            Validity::MissingPreds => {
                unreachable!("wave block had all preds in the DAG")
            }
        }
    }

    /// Burst promotion under the scan oracle: the same canonical wave
    /// schedule, with readiness recomputed by rescanning the pending
    /// buffer and one signature check per candidate (no batching — the
    /// scan engine stays the paper-literal baseline). Always returns 0
    /// batched verifications.
    fn promote_burst_scan(&mut self) -> u64 {
        loop {
            let frontier: BTreeSet<BlockRef> = self
                .pending
                .iter()
                .filter(|(_, pending)| pending.block.preds().iter().all(|p| self.dag.contains(p)))
                .map(|(r, _)| *r)
                .collect();
            let wave = self.wave_order(frontier);
            if wave.is_empty() {
                return 0;
            }
            for block_ref in wave {
                let entry = self.take_pending(&block_ref);
                let builder = entry.block.builder();
                let seq = entry.block.seq();
                let from = entry.from;
                match self.validate(&entry.block) {
                    Validity::Valid => {
                        self.dag.insert(entry.block).expect("preds checked");
                        self.note_admitted(builder, seq);
                        self.current_preds.push(block_ref);
                        self.stats.blocks_validated += 1;
                        self.missing.remove(&block_ref);
                    }
                    Validity::Invalid(reason) => {
                        self.record_rejection(block_ref, reason);
                        self.penalize(from, Offense::InvalidBlock);
                        self.missing.remove(&block_ref);
                    }
                    Validity::MissingPreds => {
                        unreachable!("frontier block had all preds in the DAG")
                    }
                }
            }
        }
    }

    /// Fixed-point promotion of pending blocks (lines 6–9): any buffered
    /// block whose predecessors are all in the DAG is validated; valid
    /// blocks are inserted and referenced from the current block. The
    /// paper-literal engine, retained as the equivalence oracle.
    ///
    /// `pending` is an ordered map so the promotion order — and with it
    /// the pred-list order of the block under construction, which is
    /// hashed and signed — is a pure function of the received blocks,
    /// keeping whole-simulation runs bit-for-bit reproducible.
    fn promote_pending_scan(&mut self) {
        loop {
            let candidate = self.pending.iter().find_map(|(r, pending)| {
                pending
                    .block
                    .preds()
                    .iter()
                    .all(|p| self.dag.contains(p))
                    .then_some(*r)
            });
            let Some(block_ref) = candidate else {
                return;
            };
            let entry = self.take_pending(&block_ref);
            let builder = entry.block.builder();
            let seq = entry.block.seq();
            let from = entry.from;
            match self.validate(&entry.block) {
                Validity::Valid => {
                    self.dag.insert(entry.block).expect("preds checked");
                    self.note_admitted(builder, seq);
                    self.current_preds.push(block_ref);
                    self.stats.blocks_validated += 1;
                    self.missing.remove(&block_ref);
                }
                Validity::Invalid(reason) => {
                    self.record_rejection(block_ref, reason);
                    self.penalize(from, Offense::InvalidBlock);
                    self.missing.remove(&block_ref);
                }
                Validity::MissingPreds => {
                    unreachable!("candidate had all preds in the DAG")
                }
            }
        }
    }

    /// Trims the pending buffer to [`GossipConfig::pending_cap`] by
    /// deterministic eviction — oldest never-promotable first (a block
    /// transitively referencing a rejected block), then oldest overall.
    /// Returns the number of blocks evicted.
    fn enforce_pending_cap(&mut self) -> usize {
        let mut evicted = 0;
        while self.pending.len() > self.config.pending_cap {
            let (_, _, victim) = *self.eviction_queue.first().expect("queue mirrors pending");
            self.evict_pending(victim);
            evicted += 1;
        }
        evicted
    }

    /// Shrinks the pending footprint of deprioritized (caught
    /// equivocating) builders to
    /// [`DefenseConfig::deprioritized_allowance`] slots each, evicting
    /// oldest-first — a convicted flooder cannot hold honest blocks'
    /// buffer space hostage while it waits out its ban. Returns the
    /// number of blocks evicted.
    fn enforce_deprioritized_allowance(&mut self) -> usize {
        if !self.defense.is_enabled() || !self.defense.any_deprioritized() {
            return 0;
        }
        let allowance = self.defense.config().deprioritized_allowance;
        let mut per_builder: BTreeMap<ServerId, Vec<(u64, BlockRef)>> = BTreeMap::new();
        for (block_ref, pending) in &self.pending {
            let builder = pending.block.builder();
            if self.defense.is_deprioritized(builder) {
                per_builder
                    .entry(builder)
                    .or_default()
                    .push((pending.arrival, *block_ref));
            }
        }
        let mut evicted = 0;
        for (_, mut entries) in per_builder {
            if entries.len() <= allowance {
                continue;
            }
            entries.sort_unstable();
            let excess = entries.len() - allowance;
            for (_, victim) in entries.into_iter().take(excess) {
                self.evict_pending(victim);
                evicted += 1;
            }
        }
        evicted
    }

    /// Evicts one pending block: un-indexes it, logs the accountability
    /// event, and re-lists its reference as missing for any surviving
    /// waiters so the `FWD` path can re-fetch it.
    fn evict_pending(&mut self, victim: BlockRef) {
        let entry = self.take_pending(&victim);
        self.stats.blocks_evicted += 1;
        // Charged to the deliverer, not the claimed builder: unverified
        // junk naming an honest builder must not damage that builder's
        // standing (the signature was never checked).
        self.penalize(entry.from, Offense::Eviction);
        let stranded_on = entry
            .stranded
            .then(|| {
                entry
                    .block
                    .preds()
                    .iter()
                    .find(|p| self.stranded_refs.contains(p))
                    .copied()
            })
            .flatten();
        self.evictions.push(EvictionEvent {
            block: victim,
            builder: entry.block.builder(),
            stranded_on,
        });
        // Un-index (index engines; the scan oracle rebuilds its FWD view
        // by rescanning): the victim stops waiting on its missing preds,
        // and preds nobody else waits for stop being requested.
        for pred in &entry.missing {
            if let Some(waiting) = self.waiters.get_mut(pred) {
                waiting.remove(&victim);
                if waiting.is_empty() {
                    self.waiters.remove(pred);
                    self.missing.remove(pred);
                }
            }
        }
        // The victim counts as never-received again: if other pending
        // blocks reference it, re-list it for FWD recovery (same shape as
        // the rejected-block path, minus the permanence).
        if let Some(waiting) = self.waiters.get(&victim) {
            let candidates: BTreeSet<ServerId> = waiting
                .iter()
                .filter_map(|w| self.pending.get(w))
                .map(|p| p.block.builder())
                .collect();
            if !candidates.is_empty() {
                self.missing.insert(
                    victim,
                    FwdState {
                        candidates,
                        last_sent: None,
                        attempts: 0,
                    },
                );
            }
        }
    }

    /// Batch-verifies the signatures of every ready block that has no
    /// verdict yet — one wave, one `BatchVerifier` pass (split across the
    /// worker pool in parallel mode). Blocks claiming an unknown builder
    /// are marked `None`: the per-block engines reject those before ever
    /// reaching the verifier, so batching must not verify them either (it
    /// would skew the shared verification counters).
    fn verify_wave(
        &mut self,
        ready: &BTreeSet<BlockRef>,
        verdicts: &mut BTreeMap<BlockRef, Option<bool>>,
    ) {
        let mut wave: Vec<BlockRef> = Vec::new();
        let mut items: Vec<SignedDigest> = Vec::new();
        for block_ref in ready {
            if verdicts.contains_key(block_ref) {
                continue;
            }
            let block = &self.pending[block_ref].block;
            if block.builder().index() >= self.config.n {
                verdicts.insert(*block_ref, None);
            } else {
                wave.push(*block_ref);
                items.push(block.signed_digest());
            }
        }
        if items.is_empty() {
            return;
        }
        self.wave_stats.record(items.len());
        let results = match &self.pool {
            Some(pool) => pool.verify(&items),
            None => self.batch_verifier.verify_batch(&items),
        };
        debug_assert_eq!(results.len(), wave.len());
        for (block_ref, ok) in wave.into_iter().zip(results) {
            verdicts.insert(block_ref, Some(ok));
        }
    }

    /// The checks of Definition 3.3 for a block whose predecessors are all
    /// present (condition (iii) — "all preds valid" — then holds because
    /// only valid blocks enter the DAG).
    fn validate(&self, block: &Block) -> Validity {
        self.validate_with(block, None)
    }

    /// [`Gossip::validate`] with an optionally pre-computed signature
    /// verdict: `Some` uses the wave batch's result, `None` verifies
    /// inline. The check *order* is identical either way — the builder
    /// bound is decided before the signature is consulted.
    fn validate_with(&self, block: &Block, sig_verdict: Option<bool>) -> Validity {
        if block.builder().index() >= self.config.n {
            return Validity::Invalid(InvalidBlockError::UnknownBuilder {
                claimed: block.builder(),
            });
        }
        // (i) verify(B.n, B.σ).
        let sig_ok = sig_verdict.unwrap_or_else(|| block.verify_signature(&self.verifier));
        if !sig_ok {
            return Validity::Invalid(InvalidBlockError::BadSignature {
                claimed: block.builder(),
            });
        }
        // (iii) prerequisite: all preds known.
        if block.preds().iter().any(|p| !self.dag.contains(p)) {
            return Validity::MissingPreds;
        }
        // (ii) genesis, or exactly one parent.
        match block.parent_via(|r| self.dag.meta(r)) {
            Ok(_) => Validity::Valid,
            Err(err) => Validity::Invalid(err),
        }
    }

    /// Rebuilds the missing-predecessor index from the pending buffer
    /// (line 10: `B ∈ B'.preds`, `B ∉ blks`, `B ∉ G`) — scan engine only;
    /// the incremental engine maintains the index in place.
    fn refresh_missing_scan(&mut self) {
        let mut still_missing: BTreeMap<BlockRef, BTreeSet<ServerId>> = BTreeMap::new();
        for pending in self.pending.values() {
            for pred in pending.block.preds() {
                if !self.dag.contains(pred) && !self.pending.contains_key(pred) {
                    still_missing
                        .entry(*pred)
                        .or_default()
                        .insert(pending.block.builder());
                }
            }
        }
        // Drop satisfied entries, keep timers of persisting ones, add new.
        self.missing.retain(|r, _| still_missing.contains_key(r));
        for (block_ref, candidates) in still_missing {
            self.missing
                .entry(block_ref)
                .and_modify(|state| state.candidates.extend(candidates.iter().copied()))
                .or_insert(FwdState {
                    candidates,
                    last_sent: None,
                    attempts: 0,
                });
        }
    }

    /// Emits `FWD` requests for missing blocks, respecting the retry timer.
    fn collect_fwd_commands(&mut self, now: TimeMs) -> Vec<NetCommand> {
        let retry = self.config.fwd_retry_ms;
        let mut commands = Vec::new();
        for (block_ref, state) in self.missing.iter_mut() {
            let due = match state.last_sent {
                None => true,
                Some(last) => now.saturating_sub(last) >= retry,
            };
            if !due || state.candidates.is_empty() {
                continue;
            }
            // Ask the builder of a block that referenced it (line 11);
            // rotate through candidates on retries.
            let candidates: Vec<ServerId> = state.candidates.iter().copied().collect();
            let target = candidates[state.attempts as usize % candidates.len()];
            state.last_sent = Some(now);
            state.attempts += 1;
            self.stats.fwd_sent += 1;
            commands.push(NetCommand::SendTo {
                to: target,
                message: NetMessage::FwdRequest(*block_ref),
            });
        }
        commands
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_codec::encode_to_vec;
    use dagbft_crypto::KeyRegistry;

    fn gossip_for(registry: &KeyRegistry, id: u32, n: usize) -> Gossip {
        Gossip::new(
            ServerId::new(id),
            GossipConfig::for_n(n),
            registry.signer(ServerId::new(id)).unwrap(),
            registry.verifier(),
        )
    }

    fn gossip_for_mode(registry: &KeyRegistry, id: u32, n: usize, mode: AdmissionMode) -> Gossip {
        Gossip::new(
            ServerId::new(id),
            GossipConfig::for_n(n).with_admission(mode),
            registry.signer(ServerId::new(id)).unwrap(),
            registry.verifier(),
        )
    }

    #[test]
    fn disseminate_builds_chain() {
        let registry = KeyRegistry::generate(2, 1);
        let mut gossip = gossip_for(&registry, 0, 2);
        let (b0, _) = gossip.disseminate(vec![], 0);
        let (b1, _) = gossip.disseminate(vec![], 10);
        assert!(b0.is_genesis());
        assert_eq!(b1.seq(), SeqNum::new(1));
        assert_eq!(b1.preds(), &[b0.block_ref()]);
        assert_eq!(gossip.dag().len(), 2);
        assert_eq!(gossip.stats().blocks_built, 2);
    }

    #[test]
    fn received_valid_block_inserted_and_referenced() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_block, _) = bob.disseminate(vec![], 0);

        let commands = alice.on_block(bob_block.clone(), 0);
        assert!(commands.is_empty());
        assert!(alice.dag().contains(&bob_block.block_ref()));
        assert_eq!(alice.stats().blocks_validated, 1);

        // Alice's next block references Bob's (line 8).
        let (alice_block, _) = alice.disseminate(vec![], 1);
        assert!(alice_block.preds().contains(&bob_block.block_ref()));
    }

    #[test]
    fn duplicate_blocks_counted_not_reinserted() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_block, _) = bob.disseminate(vec![], 0);
        alice.on_block(bob_block.clone(), 0);
        alice.on_block(bob_block.clone(), 1);
        assert_eq!(alice.stats().duplicate_blocks, 1);
        assert_eq!(alice.dag().len(), 1);
        // The reference is appended only once (Lemma A.6).
        let (alice_block, _) = alice.disseminate(vec![], 2);
        let count = alice_block
            .preds()
            .iter()
            .filter(|r| **r == bob_block.block_ref())
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn bad_signature_rejected() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let forged = Block::build_with_signature(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![],
            dagbft_crypto::Signature::NULL,
        );
        alice.on_block(forged.clone(), 0);
        assert_eq!(alice.stats().invalid_blocks, 1);
        assert!(!alice.dag().contains(&forged.block_ref()));
    }

    #[test]
    fn unknown_builder_rejected() {
        let registry = KeyRegistry::generate(4, 1);
        let mut alice = gossip_for(&registry, 0, 2); // only servers 0 and 1
        let outsider = Block::build(
            ServerId::new(3),
            SeqNum::ZERO,
            vec![],
            vec![],
            &registry.signer(ServerId::new(3)).unwrap(),
        );
        alice.on_block(outsider, 0);
        assert_eq!(alice.stats().invalid_blocks, 1);
    }

    #[test]
    fn missing_pred_triggers_fwd_to_builder() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);

        // Alice receives b1 without b0: FWD to Bob (builder of b1).
        let commands = alice.on_block(bob_b1.clone(), 5);
        assert_eq!(
            commands,
            vec![NetCommand::SendTo {
                to: ServerId::new(1),
                message: NetMessage::FwdRequest(bob_b0.block_ref()),
            }]
        );
        assert_eq!(alice.pending_len(), 1);
        assert_eq!(alice.stats().fwd_sent, 1);

        // Bob answers the FWD with the block.
        let answers = bob.on_fwd_request(ServerId::new(0), bob_b0.block_ref());
        assert_eq!(
            answers,
            vec![NetCommand::SendTo {
                to: ServerId::new(0),
                message: NetMessage::Block(bob_b0.clone()),
            }]
        );

        // Delivery resolves the gap; both blocks are promoted.
        alice.on_block(bob_b0.clone(), 6);
        assert!(alice.dag().contains(&bob_b0.block_ref()));
        assert!(alice.dag().contains(&bob_b1.block_ref()));
        assert_eq!(alice.pending_len(), 0);
    }

    #[test]
    fn fwd_reply_shares_the_stored_block_body() {
        let registry = KeyRegistry::generate(2, 1);
        let mut bob = gossip_for(&registry, 1, 2);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let answers = bob.on_fwd_request(ServerId::new(0), bob_b0.block_ref());
        let NetCommand::SendTo {
            message: NetMessage::Block(served),
            ..
        } = &answers[0]
        else {
            panic!("expected a block reply");
        };
        // Zero-copy reply: the served block's wire image is the same
        // allocation the DAG holds.
        assert!(served
            .wire_bytes()
            .shares_allocation_with(bob_b0.wire_bytes()));
    }

    #[test]
    fn fwd_retry_respects_interval() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let mut bob = gossip_for(&registry, 1, 2);
        let (_bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);

        let first = alice.on_block(bob_b1, 0);
        assert_eq!(first.len(), 1);
        // Too early: no retry.
        assert!(alice.on_tick(50).is_empty());
        // After the interval: retried.
        let retried = alice.on_tick(100);
        assert_eq!(retried.len(), 1);
        assert_eq!(alice.stats().fwd_sent, 2);
    }

    #[test]
    fn fwd_request_for_unknown_block_ignored() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let bogus = BlockRef::from_digest(dagbft_crypto::Digest::ZERO);
        assert!(alice.on_fwd_request(ServerId::new(1), bogus).is_empty());
        assert_eq!(alice.stats().fwd_received, 1);
        assert_eq!(alice.stats().fwd_answered, 0);
    }

    #[test]
    fn equivocating_blocks_both_accepted() {
        // Figure 3: equivocation is *valid*; detection is the DAG's job,
        // tolerance is P's job.
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let b3 = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let b4 = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        alice.on_block(b3.clone(), 0);
        alice.on_block(b4.clone(), 0);
        assert!(alice.dag().contains(&b3.block_ref()));
        assert!(alice.dag().contains(&b4.block_ref()));
        assert_eq!(alice.dag().equivocations(ServerId::new(1)).len(), 1);
    }

    #[test]
    fn block_with_two_distinct_parents_rejected() {
        let registry = KeyRegistry::generate(2, 1);
        let mut alice = gossip_for(&registry, 0, 2);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        let child = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        alice.on_block(g_a, 0);
        alice.on_block(g_b, 0);
        alice.on_block(child.clone(), 0);
        assert!(!alice.dag().contains(&child.block_ref()));
        assert_eq!(alice.stats().invalid_blocks, 1);
    }

    #[test]
    fn net_message_wire_roundtrip() {
        let registry = KeyRegistry::generate(1, 1);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        let block = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signer);
        for message in [
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ] {
            let bytes = encode_to_vec(&message);
            assert_eq!(bytes.len(), message.wire_len());
            let (discriminant, payload) = message.payload_view();
            assert_eq!(bytes[0], discriminant);
            assert_eq!(&bytes[1..], payload);
            let decoded: NetMessage = dagbft_codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(decoded, message);
        }
    }

    /// Every admission engine, for mode-spanning tests.
    const ALL_MODES: [AdmissionMode; 3] = [
        AdmissionMode::Index,
        AdmissionMode::Scan,
        AdmissionMode::Parallel { workers: 2 },
    ];

    #[test]
    fn out_of_order_chain_promotes_in_one_pass() {
        let registry = KeyRegistry::generate(2, 1);
        for mode in ALL_MODES {
            let mut alice = gossip_for_mode(&registry, 0, 2, mode);
            let mut bob = gossip_for(&registry, 1, 2);
            let blocks: Vec<Block> = (0..5).map(|t| bob.disseminate(vec![], t).0).collect();
            // Deliver in reverse order: everything buffers, then promotes at
            // once.
            for block in blocks.iter().rev().take(4) {
                alice.on_block(block.clone(), 0);
            }
            assert_eq!(alice.dag().len(), 0);
            alice.on_block(blocks[0].clone(), 1);
            assert_eq!(alice.dag().len(), 5);
            assert_eq!(alice.pending_len(), 0);
            assert!(alice.dag().check_invariants());
        }
    }

    /// Drives all three admission engines through the same hostile
    /// schedule and asserts every observable — commands per delivery, DAG
    /// content *and order*, pred list, stats, rejections — is identical.
    fn assert_engines_agree(deliveries: &[(Block, TimeMs)], n: usize, registry: &KeyRegistry) {
        let mut engines: Vec<Gossip> = ALL_MODES
            .iter()
            .map(|mode| gossip_for_mode(registry, 0, n, *mode))
            .collect();
        for (block, at) in deliveries {
            let commands: Vec<Vec<NetCommand>> = engines
                .iter_mut()
                .map(|engine| engine.on_block(block.clone(), *at))
                .collect();
            for other in &commands[1..] {
                assert_eq!(&commands[0], other, "commands diverged at t={at}");
            }
        }
        let reference = &engines[0];
        let refs: Vec<BlockRef> = reference.dag().iter().map(|b| b.block_ref()).collect();
        for other in &engines[1..] {
            let other_refs: Vec<BlockRef> = other.dag().iter().map(|b| b.block_ref()).collect();
            assert_eq!(refs, other_refs, "promotion order diverged");
            assert_eq!(reference.pending_len(), other.pending_len());
            assert_eq!(reference.stats(), other.stats());
            assert_eq!(reference.rejected(), other.rejected());
        }
        // The index engines batch every signature they check (every
        // promoted or rejected block except unknown-builder rejects, which
        // never reach the verifier); the scan oracle never batches.
        assert!(engines[0].wave_stats().batched_blocks >= engines[0].stats().blocks_validated);
        assert!(
            engines[0].wave_stats().batched_blocks
                <= engines[0].stats().blocks_validated + engines[0].stats().invalid_blocks
        );
        assert_eq!(engines[1].wave_stats(), &WaveStats::default());
        assert_eq!(engines[0].wave_stats(), engines[2].wave_stats());
        let own: Vec<Block> = engines
            .iter_mut()
            .map(|engine| engine.disseminate(vec![], 1_000).0)
            .collect();
        for other in &own[1..] {
            assert_eq!(&own[0], other, "current block preds diverged");
        }
    }

    /// Drives all three engines through the same schedule via
    /// `on_block_burst` (one bracket per `chunk` blocks) and asserts every
    /// observable is identical across engines.
    fn assert_engines_agree_on_bursts(
        deliveries: &[Block],
        chunk: usize,
        n: usize,
        registry: &KeyRegistry,
    ) {
        let mut engines: Vec<Gossip> = ALL_MODES
            .iter()
            .map(|mode| gossip_for_mode(registry, 0, n, *mode))
            .collect();
        for (at, burst) in deliveries.chunks(chunk).enumerate() {
            let commands: Vec<Vec<NetCommand>> = engines
                .iter_mut()
                .map(|engine| engine.on_block_burst(burst.iter().cloned(), at as TimeMs))
                .collect();
            for other in &commands[1..] {
                assert_eq!(&commands[0], other, "burst commands diverged at {at}");
            }
        }
        let reference_refs: Vec<BlockRef> =
            engines[0].dag().iter().map(|b| b.block_ref()).collect();
        for other in &engines[1..] {
            let other_refs: Vec<BlockRef> = other.dag().iter().map(|b| b.block_ref()).collect();
            assert_eq!(reference_refs, other_refs, "burst promotion order diverged");
            assert_eq!(engines[0].pending_len(), other.pending_len());
            assert_eq!(engines[0].stats(), other.stats());
            assert_eq!(engines[0].rejected(), other.rejected());
            assert_eq!(engines[0].evictions(), other.evictions());
        }
        // Wave structure: identical between the batching engines, absent
        // under the scan oracle; burst brackets counted by all.
        assert_eq!(engines[0].wave_stats(), engines[2].wave_stats());
        assert_eq!(engines[1].wave_stats().waves, 0);
        assert_eq!(
            engines[1].wave_stats().bursts,
            engines[0].wave_stats().bursts
        );
        assert_eq!(
            engines[1].wave_stats().burst_blocks,
            engines[0].wave_stats().burst_blocks
        );
        let own: Vec<Block> = engines
            .iter_mut()
            .map(|engine| engine.disseminate(vec![], 1_000).0)
            .collect();
        for other in &own[1..] {
            assert_eq!(
                own[0].wire_bytes(),
                other.wire_bytes(),
                "burst own-block bytes diverged"
            );
        }
    }

    #[test]
    fn engines_agree_on_burst_ingest_of_hostile_soup() {
        let registry = KeyRegistry::generate(3, 1);
        let mut bob = gossip_for(&registry, 1, 3);
        let mut blocks: Vec<Block> = (0..12).map(|t| bob.disseminate(vec![], t).0).collect();
        blocks.reverse();
        // Whole-soup bracket and a split into small brackets.
        for chunk in [blocks.len(), 5] {
            assert_engines_agree_on_bursts(&blocks, chunk, 3, &registry);
        }
    }

    #[test]
    fn burst_ingest_admits_what_per_message_ingest_admits() {
        // The promotion fixed point is confluent: deferring a burst can
        // reorder promotions but never change the admitted set, the
        // rejections, or the validation counts.
        let registry = KeyRegistry::generate(3, 1);
        let mut bob = gossip_for(&registry, 1, 3);
        let blocks: Vec<Block> = (0..9).map(|t| bob.disseminate(vec![], t).0).collect();
        let forged = Block::build_with_signature(
            ServerId::new(2),
            SeqNum::ZERO,
            vec![],
            vec![],
            dagbft_crypto::Signature::NULL,
        );
        let mut schedule: Vec<Block> = blocks.iter().rev().cloned().collect();
        schedule.insert(4, forged);
        for mode in ALL_MODES {
            let mut one_at_a_time = gossip_for_mode(&registry, 0, 3, mode);
            for (t, block) in schedule.iter().enumerate() {
                one_at_a_time.on_block(block.clone(), t as TimeMs);
            }
            let mut bursty = gossip_for_mode(&registry, 0, 3, mode);
            bursty.on_block_burst(schedule.iter().cloned(), 0);
            let set = |g: &Gossip| {
                g.dag()
                    .refs()
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>()
            };
            assert_eq!(set(&one_at_a_time), set(&bursty), "{mode:?}: admitted set");
            assert_eq!(one_at_a_time.rejected(), bursty.rejected(), "{mode:?}");
            assert_eq!(
                one_at_a_time.stats().blocks_validated,
                bursty.stats().blocks_validated,
                "{mode:?}"
            );
            assert_eq!(
                one_at_a_time.stats().invalid_blocks,
                bursty.stats().invalid_blocks,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn burst_widens_waves_past_per_message_ingest() {
        // An in-order 4-builder soup: per-message ingest promotes each
        // block alone (waves of 1); one burst bracket promotes whole
        // rounds (waves of 4) — the widening that feeds the pool.
        let registry = KeyRegistry::generate(5, 9);
        let signers: Vec<_> = (1..5)
            .map(|i| registry.signer(ServerId::new(i)).unwrap())
            .collect();
        let mut blocks = Vec::new();
        let mut prev: Vec<BlockRef> = Vec::new();
        for round in 0..6u64 {
            let mut layer = Vec::new();
            for signer in &signers {
                let block = Block::build(
                    signer.id(),
                    SeqNum::new(round),
                    prev.clone(),
                    vec![],
                    signer,
                );
                layer.push(block.block_ref());
                blocks.push(block);
            }
            prev = layer;
        }
        let mut per_message = gossip_for_mode(&registry, 0, 5, AdmissionMode::Index);
        for block in &blocks {
            per_message.on_block(block.clone(), 0);
        }
        assert_eq!(per_message.wave_stats().largest_wave, 1);
        let mut bursty = gossip_for_mode(&registry, 0, 5, AdmissionMode::Index);
        bursty.on_block_burst(blocks.iter().cloned(), 0);
        assert_eq!(bursty.dag().len(), blocks.len());
        assert_eq!(bursty.wave_stats().largest_wave, 4);
        assert_eq!(bursty.wave_stats().smallest_wave, 4);
        assert_eq!(bursty.wave_stats().waves, 6);
        assert_eq!(bursty.wave_stats().bursts, 1);
        assert_eq!(bursty.wave_stats().burst_blocks, blocks.len() as u64);
        // Histogram: six waves of width 4 land in the [4, 8) bucket.
        assert_eq!(bursty.wave_stats().width_histogram[2], 6);
        assert!((bursty.wave_stats().mean_wave() - 4.0).abs() < f64::EPSILON);
    }

    #[test]
    fn pending_cap_evicts_stranded_first_and_fwd_recovers() {
        let registry = KeyRegistry::generate(3, 1);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        // A rejected block (two distinct parents) with a flood of
        // stranded descendants, plus an honest gap: b1 arrives before b0.
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        let two_parents = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        let mut stranded_chain = Vec::new();
        let mut parent = two_parents.block_ref();
        for k in 2..8u64 {
            let child = Block::build(
                ServerId::new(1),
                SeqNum::new(k),
                vec![parent],
                vec![],
                &signer1,
            );
            parent = child.block_ref();
            stranded_chain.push(child);
        }
        let mut bob = gossip_for(&registry, 2, 3);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);

        for mode in ALL_MODES {
            let mut alice = Gossip::new(
                ServerId::new(0),
                GossipConfig::for_n(3)
                    .with_admission(mode)
                    .with_pending_cap(3),
                registry.signer(ServerId::new(0)).unwrap(),
                registry.verifier(),
            );
            alice.on_block(g_a.clone(), 0);
            alice.on_block(g_b.clone(), 0);
            alice.on_block(two_parents.clone(), 0); // rejected
            alice.on_block(bob_b1.clone(), 1); // honest, waits for b0
            for (t, block) in stranded_chain.iter().enumerate() {
                alice.on_block(block.clone(), 2 + t as TimeMs);
            }
            // The flood stayed within the cap; the honest waiter survived
            // because stranded blocks are evicted first.
            assert!(alice.pending_len() <= 3, "{mode:?}");
            assert!(alice.stats().blocks_evicted > 0, "{mode:?}");
            assert!(
                alice
                    .evictions()
                    .iter()
                    .all(|e| e.builder == ServerId::new(1)),
                "{mode:?}: only the flooder's blocks evicted"
            );
            assert!(
                alice
                    .evictions()
                    .iter()
                    .any(|e| e.stranded_on == Some(two_parents.block_ref())),
                "{mode:?}: eviction names the stranding rejection"
            );
            // FWD recovery still completes the honest chain.
            alice.on_block(bob_b0.clone(), 100);
            assert!(alice.dag().contains(&bob_b0.block_ref()), "{mode:?}");
            assert!(alice.dag().contains(&bob_b1.block_ref()), "{mode:?}");
        }
    }

    #[test]
    fn evicted_block_can_be_refetched_and_admitted() {
        // Eviction is a resource decision: a wanted block dropped under
        // cap pressure is re-requested via FWD and admitted on re-delivery.
        let registry = KeyRegistry::generate(2, 1);
        let mut bob = gossip_for(&registry, 1, 2);
        let chain: Vec<Block> = (0..4).map(|t| bob.disseminate(vec![], t).0).collect();
        let mut alice = Gossip::new(
            ServerId::new(0),
            GossipConfig::for_n(2).with_pending_cap(2),
            registry.signer(ServerId::new(0)).unwrap(),
            registry.verifier(),
        );
        // Deliver b3, b2, b1: the cap (2) evicts the oldest (b3).
        for (t, block) in chain.iter().skip(1).rev().enumerate() {
            alice.on_block(block.clone(), t as TimeMs);
        }
        assert_eq!(alice.pending_len(), 2);
        assert_eq!(alice.stats().blocks_evicted, 1);
        assert_eq!(alice.evictions()[0].block, chain[3].block_ref());
        assert_eq!(alice.evictions()[0].stranded_on, None);
        // The gap closes: b0 promotes b1 and b2. The evicted tip b3 is
        // simply absent — until b4 references it, which triggers a FWD…
        alice.on_block(chain[0].clone(), 10);
        assert_eq!(alice.dag().len(), 3);
        let (b4, _) = bob.disseminate(vec![], 20);
        let commands = alice.on_block(b4.clone(), 30);
        assert!(
            commands.iter().any(|c| matches!(
                c,
                NetCommand::SendTo {
                    message: NetMessage::FwdRequest(r),
                    ..
                } if *r == chain[3].block_ref()
            )),
            "evicted block re-requested: {commands:?}"
        );
        // …and re-delivery admits the whole chain.
        alice.on_block(chain[3].clone(), 40);
        assert_eq!(alice.dag().len(), 5);
        assert_eq!(alice.pending_len(), 0);
    }

    #[test]
    fn late_stranding_reranks_existing_waiters() {
        // Regression: R is rejected; X (referencing unseen P) arrives and
        // ranks as honest; then P (referencing R) arrives and is stranded
        // at insertion. X must be re-ranked stranded too — under cap
        // pressure the doomed chain is evicted, never the honest backlog,
        // and the eviction queue stays exactly in sync with the buffer.
        let registry = KeyRegistry::generate(3, 1);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        let rejected = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        let p = Block::build(
            ServerId::new(1),
            SeqNum::new(2),
            vec![rejected.block_ref()],
            vec![],
            &signer1,
        );
        let x = Block::build(
            ServerId::new(1),
            SeqNum::new(3),
            vec![p.block_ref()],
            vec![],
            &signer1,
        );
        let mut bob = gossip_for(&registry, 2, 3);
        let (bob_b0, _) = bob.disseminate(vec![], 0);
        let (bob_b1, _) = bob.disseminate(vec![], 1);
        for mode in ALL_MODES {
            for bursted in [false, true] {
                let mut alice = Gossip::new(
                    ServerId::new(0),
                    GossipConfig::for_n(3)
                        .with_admission(mode)
                        .with_pending_cap(2),
                    registry.signer(ServerId::new(0)).unwrap(),
                    registry.verifier(),
                );
                let schedule = [
                    g_a.clone(),
                    g_b.clone(),
                    rejected.clone(),
                    x.clone(), // arrives before its pred P — ranked honest
                    p.clone(), // stranded at insertion; X is doomed too
                    bob_b1.clone(),
                ];
                if bursted {
                    alice.on_block_burst(schedule, 0);
                } else {
                    for (t, block) in schedule.into_iter().enumerate() {
                        alice.on_block(block, t as TimeMs);
                    }
                }
                // The cap evicted from the doomed chain (oldest stranded
                // first: X), never the honest waiter.
                assert_eq!(alice.pending_len(), 2, "{mode:?} burst={bursted}");
                assert_eq!(
                    alice.evictions(),
                    &[EvictionEvent {
                        block: x.block_ref(),
                        builder: ServerId::new(1),
                        stranded_on: Some(p.block_ref()),
                    }],
                    "{mode:?} burst={bursted}"
                );
                // The honest chain still completes.
                alice.on_block(bob_b0.clone(), 100);
                assert!(alice.dag().contains(&bob_b1.block_ref()), "{mode:?}");
            }
        }
    }

    #[test]
    fn duplicate_flood_burst_skips_promotion_work() {
        // A bracket of pure duplicates must not pay a promotion pass.
        let registry = KeyRegistry::generate(2, 1);
        let mut bob = gossip_for(&registry, 1, 2);
        let (b0, _) = bob.disseminate(vec![], 0);
        let mut alice = gossip_for(&registry, 0, 2);
        alice.on_block(b0.clone(), 0);
        let waves_before = alice.wave_stats().waves;
        alice.on_block_burst(std::iter::repeat_n(b0.clone(), 64), 1);
        assert_eq!(alice.stats().duplicate_blocks, 64);
        assert_eq!(alice.wave_stats().waves, waves_before);
        assert_eq!(alice.wave_stats().bursts, 1);
        assert_eq!(alice.wave_stats().burst_blocks, 0);
    }

    #[test]
    fn nested_burst_bracket_panics() {
        let registry = KeyRegistry::generate(2, 1);
        let mut gossip = gossip_for(&registry, 0, 2);
        gossip.begin_burst();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gossip.begin_burst();
        }));
        assert!(result.is_err(), "nested brackets must be rejected");
    }

    #[test]
    fn engines_agree_on_reverse_order_burst() {
        let registry = KeyRegistry::generate(3, 1);
        let mut bob = gossip_for(&registry, 1, 3);
        let blocks: Vec<Block> = (0..12).map(|t| bob.disseminate(vec![], t).0).collect();
        let deliveries: Vec<(Block, TimeMs)> = blocks
            .iter()
            .rev()
            .enumerate()
            .map(|(i, b)| (b.clone(), i as TimeMs))
            .collect();
        assert_engines_agree(&deliveries, 3, &registry);
    }

    #[test]
    fn engines_agree_on_equivocation_with_invalid_children() {
        let registry = KeyRegistry::generate(3, 1);
        let signer1 = registry.signer(ServerId::new(1)).unwrap();
        // Equivocating genesis pair…
        let g_a = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signer1);
        let g_b = Block::build(
            ServerId::new(1),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(crate::Label::new(1), &9u8)],
            &signer1,
        );
        // …an invalid child referencing both parents…
        let two_parents = Block::build(
            ServerId::new(1),
            SeqNum::new(1),
            vec![g_a.block_ref(), g_b.block_ref()],
            vec![],
            &signer1,
        );
        // …and a grandchild of the invalid block: can never promote, keeps
        // FWD-ing the rejected ref.
        let grandchild = Block::build(
            ServerId::new(1),
            SeqNum::new(2),
            vec![two_parents.block_ref()],
            vec![],
            &signer1,
        );
        // Forged signature on a valid-shaped block, delivered out of order.
        let forged = Block::build_with_signature(
            ServerId::new(2),
            SeqNum::ZERO,
            vec![],
            vec![],
            dagbft_crypto::Signature::NULL,
        );
        let deliveries: Vec<(Block, TimeMs)> = [
            (grandchild, 0),
            (two_parents, 1),
            (forged, 2),
            (g_b, 3),
            (g_a, 4),
        ]
        .into_iter()
        .collect();
        assert_engines_agree(&deliveries, 3, &registry);
    }
}
