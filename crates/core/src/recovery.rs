//! Crash–recovery support (§7 "Limitations", first paragraph).
//!
//! The paper observes that safe protocols in the crash–recovery setting
//! "seem like a great match for the block DAG approach: they do allow
//! parties that recover to re-synchronize the block DAG, and continue
//! execution". This module implements exactly that:
//!
//! * [`persist_dag`] serializes a DAG to bytes (topological block order);
//! * [`restore_dag`] rebuilds a DAG from persisted bytes, re-validating
//!   structure;
//! * [`crate::Shim::recover`] reconstructs a full server from its
//!   persisted DAG: gossip resumes the block chain at the right sequence
//!   number, and the interpreter — being a *pure function of the DAG*
//!   (Lemma 4.2) — recomputes every instance's state identically by
//!   re-interpretation. No protocol-level log is needed: the DAG *is* the
//!   log.
//!
//! The paper's caveat also holds here: a recovering server must not lose
//! its own chain tip, or it would equivocate by rebuilding sequence
//! numbers it already used (tested in `shim`).

use dagbft_codec::{decode_from_slice, encode_to_vec, DecodeError, Reader, WireDecode, WireEncode};

use crate::block::Block;
use crate::dag::BlockDag;
use crate::error::DagError;

/// A persisted DAG image: blocks in topological (insertion) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagImage {
    blocks: Vec<Block>,
}

impl DagImage {
    /// Number of blocks in the image.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the image holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The persisted blocks, in topological order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }
}

impl WireEncode for DagImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.blocks.encode(out);
    }
}

impl WireDecode for DagImage {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DagImage {
            blocks: Vec::<Block>::decode(reader)?,
        })
    }
}

/// Serializes `dag` to a portable byte image.
///
/// The image is self-contained: block references are recomputed from
/// content on restore, so tampering with any block breaks the restore.
pub fn persist_dag(dag: &BlockDag) -> Vec<u8> {
    let image = DagImage {
        blocks: dag.iter().cloned().collect(),
    };
    encode_to_vec(&image)
}

/// Restores a DAG from a persisted image.
///
/// # Errors
///
/// * [`RestoreError::Corrupt`] if the bytes do not decode;
/// * [`RestoreError::BrokenTopology`] if a block arrives before its
///   predecessors (a valid image is topologically ordered by
///   construction).
pub fn restore_dag(bytes: &[u8]) -> Result<BlockDag, RestoreError> {
    let image: DagImage = decode_from_slice(bytes).map_err(RestoreError::Corrupt)?;
    let mut dag = BlockDag::new();
    for block in image.blocks {
        match dag.insert(block) {
            Ok(_) => {}
            Err(DagError::MissingPredecessors { block, .. }) => {
                return Err(RestoreError::BrokenTopology { block })
            }
            Err(DagError::UnknownBlock { block }) => {
                return Err(RestoreError::BrokenTopology { block })
            }
        }
    }
    Ok(dag)
}

/// Errors restoring a persisted DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes are not a valid image.
    Corrupt(DecodeError),
    /// A block precedes its own predecessors in the image.
    BrokenTopology {
        /// The offending block.
        block: crate::block::BlockRef,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Corrupt(err) => write!(f, "corrupt dag image: {err}"),
            RestoreError::BrokenTopology { block } => {
                write!(f, "dag image not topologically ordered at {block}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{LabeledRequest, SeqNum};
    use crate::Label;
    use dagbft_crypto::{KeyRegistry, ServerId};

    fn sample_dag() -> BlockDag {
        let registry = KeyRegistry::generate(2, 5);
        let s0 = registry.signer(ServerId::new(0)).unwrap();
        let s1 = registry.signer(ServerId::new(1)).unwrap();
        let b0 = Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &7u64)],
            &s0,
        );
        let b1 = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &s1);
        let b2 = Block::build(
            ServerId::new(0),
            SeqNum::new(1),
            vec![b0.block_ref(), b1.block_ref()],
            vec![],
            &s0,
        );
        let mut dag = BlockDag::new();
        dag.insert(b0).unwrap();
        dag.insert(b1).unwrap();
        dag.insert(b2).unwrap();
        dag
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dag = sample_dag();
        let bytes = persist_dag(&dag);
        let restored = restore_dag(&bytes).unwrap();
        assert_eq!(restored.len(), dag.len());
        assert_eq!(restored.edge_count(), dag.edge_count());
        for r in dag.refs() {
            assert!(restored.contains(r));
        }
        assert!(restored.check_invariants());
    }

    #[test]
    fn corrupt_image_rejected() {
        let dag = sample_dag();
        let mut bytes = persist_dag(&dag);
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(restore_dag(&bytes), Err(RestoreError::Corrupt(_))));
    }

    #[test]
    fn reordered_image_rejected() {
        let dag = sample_dag();
        let mut image: DagImage = decode_from_slice(&persist_dag(&dag)).unwrap();
        image.blocks.reverse(); // child before parents
        let bytes = encode_to_vec(&image);
        assert!(matches!(
            restore_dag(&bytes),
            Err(RestoreError::BrokenTopology { .. })
        ));
    }

    #[test]
    fn tampered_block_changes_identity() {
        // Flipping a *content* byte of the first block changes its
        // recomputed ref — its successor then references a block that no
        // longer exists, failing the restore (or, at minimum, the original
        // identity disappears). Byte 8 sits inside the first block's
        // sequence-number field (image = u32 count, then builder u32,
        // seq u64, …).
        let dag = sample_dag();
        let mut tampered = persist_dag(&dag);
        tampered[8] ^= 0xff;
        match restore_dag(&tampered) {
            Err(_) => {}
            Ok(restored) => {
                let originals: Vec<_> = dag.refs().copied().collect();
                let has_all = originals.iter().all(|r| restored.contains(r));
                assert!(!has_all, "tampering must not go unnoticed");
            }
        }
    }

    #[test]
    fn empty_image() {
        let dag = BlockDag::new();
        let restored = restore_dag(&persist_dag(&dag)).unwrap();
        assert!(restored.is_empty());
        let image = DagImage { blocks: vec![] };
        assert!(image.is_empty());
        assert_eq!(image.len(), 0);
    }
}
