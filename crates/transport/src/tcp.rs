//! The threaded TCP transport.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dagbft_core::NetMessage;
use dagbft_crypto::ServerId;

use crate::frame::{
    is_corrupt_payload, read_net_message_pooled, write_frame, write_net_message, FrameArena, Hello,
};

const POLL: Duration = Duration::from_millis(25);
/// First reconnect delay; doubles per failed attempt up to [`BACKOFF_MAX`].
const BACKOFF_INITIAL: Duration = Duration::from_millis(50);
/// Backoff ceiling, also the cool-down before a peer marked down is probed
/// again by the sender loop.
const BACKOFF_MAX: Duration = Duration::from_millis(1_600);
/// Connect attempts per [`connect_with_hello`] burst (50 → 800 ms sleeps).
const CONNECT_ATTEMPTS: u32 = 6;
/// Maximum reconnect jitter (exclusive); see [`reconnect_jitter`].
const JITTER_SPREAD_MS: u64 = 40;
/// Maximum concurrent inbound reader threads. Connections accepted past
/// the cap are dropped immediately — an unauthenticated churner must not
/// grow the thread count (or the `JoinHandle` list) without bound.
const MAX_INBOUND_READERS: usize = 256;

/// Deterministic per-link reconnect jitter, derived from the two server
/// identities rather than wall clock or randomness: when a whole cluster
/// restarts at once, every sender backing off toward the same recovering
/// peer would otherwise wake in lockstep (they share `BACKOFF_INITIAL`)
/// and thundering-herd its accept queue. Spreading each directed link by
/// a stable 0–39 ms keeps reconnect storms apart while remaining fully
/// reproducible.
fn reconnect_jitter(me: ServerId, peer_index: usize) -> Duration {
    let spread = (me.index() as u64 * 31 + peer_index as u64 * 17 + 7) % JITTER_SPREAD_MS;
    Duration::from_millis(spread)
}

/// Lock-free table of per-peer inbound bans, in milliseconds since the
/// transport started (`0` = not banned). The node event loop mirrors the
/// defense engine's time-decaying bans in here; the accept/reader side
/// consults it to refuse banned peers' connections and data.
#[derive(Debug)]
struct BanTable {
    started: Instant,
    deadlines: Vec<AtomicU64>,
}

impl BanTable {
    fn new(peers: usize) -> Self {
        BanTable {
            started: Instant::now(),
            deadlines: (0..peers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn ban(&self, peer: usize, remaining: Duration) {
        if let Some(deadline) = self.deadlines.get(peer) {
            let until = self.elapsed_ms() + remaining.as_millis() as u64;
            deadline.store(until.max(1), Ordering::Relaxed);
        }
    }

    fn is_banned(&self, peer: usize) -> bool {
        self.deadlines
            .get(peer)
            .is_some_and(|deadline| self.elapsed_ms() < deadline.load(Ordering::Relaxed))
    }
}

/// Per-peer traffic counters, updated lock-free by the sender and reader
/// threads. Bytes count the message's canonical wire encoding
/// (`NetMessage::wire_len`), excluding frame headers — the same currency
/// the simulator's `NetMetrics` reports, so live and simulated traffic
/// numbers are comparable.
#[derive(Debug, Default)]
struct PeerTraffic {
    sent_msgs: AtomicU64,
    sent_bytes: AtomicU64,
    recv_msgs: AtomicU64,
    recv_bytes: AtomicU64,
    /// Frames from this peer that were fully read but failed to decode —
    /// the wire-level offense the node loop feeds into the defense engine.
    recv_decode_errors: AtomicU64,
}

/// A point-in-time copy of one peer's [`TcpTransport`] traffic counters
/// (see [`TcpTransport::peer_traffic`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTrafficSnapshot {
    /// Messages successfully written to this peer.
    pub sent_msgs: u64,
    /// Wire bytes of those messages.
    pub sent_bytes: u64,
    /// Messages received from this peer.
    pub recv_msgs: u64,
    /// Wire bytes of those messages.
    pub recv_bytes: u64,
    /// Frames from this peer that read completely but failed to decode.
    pub recv_decode_errors: u64,
}

/// A TCP transport endpoint for one server.
///
/// Owns an accept loop, one reader thread per inbound connection, and one
/// sender thread per peer (lazy connect, reconnect on failure). Incoming
/// messages from all peers fan into a single channel.
///
/// Dropping the transport (or calling [`TcpTransport::shutdown`]) stops
/// all threads.
#[derive(Debug)]
pub struct TcpTransport {
    me: ServerId,
    local_addr: SocketAddr,
    outboxes: Vec<Sender<NetMessage>>,
    incoming_rx: Receiver<(ServerId, NetMessage)>,
    traffic: Arc<Vec<PeerTraffic>>,
    bans: Arc<BanTable>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpTransport {
    /// Binds `listen` for server `me` and wires sender queues for `peers`
    /// (indexed by server id; the own entry is ignored).
    ///
    /// # Errors
    ///
    /// Propagates the listener bind error.
    pub fn bind(me: ServerId, listen: SocketAddr, peers: Vec<SocketAddr>) -> io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (incoming_tx, incoming_rx) = unbounded();
        let traffic: Arc<Vec<PeerTraffic>> =
            Arc::new((0..peers.len()).map(|_| PeerTraffic::default()).collect());
        let bans = Arc::new(BanTable::new(peers.len()));
        let mut threads = Vec::new();

        // Accept loop: spawns a reader thread per connection.
        {
            let shutdown = shutdown.clone();
            let incoming_tx = incoming_tx.clone();
            let traffic = traffic.clone();
            let bans = bans.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, incoming_tx, traffic, bans, shutdown);
            }));
        }

        // Per-peer sender threads.
        let mut outboxes = Vec::with_capacity(peers.len());
        for (index, peer) in peers.iter().enumerate() {
            let (tx, rx) = unbounded::<NetMessage>();
            outboxes.push(tx);
            if index == me.index() {
                continue; // no thread for self; sends to self are dropped
            }
            let peer = *peer;
            let shutdown = shutdown.clone();
            let traffic = traffic.clone();
            threads.push(std::thread::spawn(move || {
                sender_loop(me, index, peer, rx, traffic, shutdown);
            }));
        }

        Ok(TcpTransport {
            me,
            local_addr,
            outboxes,
            incoming_rx,
            traffic,
            bans,
            shutdown,
            threads,
        })
    }

    /// The server this transport belongs to.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Queues `message` for `to`. Sends to self are ignored (the shim
    /// already holds its own blocks).
    pub fn send(&self, to: ServerId, message: NetMessage) {
        if to == self.me {
            return;
        }
        if let Some(outbox) = self.outboxes.get(to.index()) {
            let _ = outbox.send(message);
        }
    }

    /// Queues `message` for every peer except self.
    pub fn broadcast(&self, message: NetMessage) {
        for index in 0..self.outboxes.len() {
            if index != self.me.index() {
                let _ = self.outboxes[index].send(message.clone());
            }
        }
    }

    /// The fan-in channel of incoming `(sender, message)` pairs.
    pub fn incoming(&self) -> &Receiver<(ServerId, NetMessage)> {
        &self.incoming_rx
    }

    /// Point-in-time per-peer traffic counters, indexed by server id (the
    /// own slot stays zero). Readable from any thread while the transport
    /// runs — this is what the node event loop publishes to the metrics
    /// endpoint as `peer<i>_*`.
    pub fn peer_traffic(&self) -> Vec<PeerTrafficSnapshot> {
        self.traffic
            .iter()
            .map(|peer| PeerTrafficSnapshot {
                sent_msgs: peer.sent_msgs.load(Ordering::Relaxed),
                sent_bytes: peer.sent_bytes.load(Ordering::Relaxed),
                recv_msgs: peer.recv_msgs.load(Ordering::Relaxed),
                recv_bytes: peer.recv_bytes.load(Ordering::Relaxed),
                recv_decode_errors: peer.recv_decode_errors.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Bans `peer` from delivering inbound traffic for `remaining`:
    /// its live reader connections close on their next message and fresh
    /// connections are refused right after the identifying `Hello` —
    /// re-banning extends the deadline, and it decays on its own. The
    /// node event loop mirrors the defense engine's time-decaying bans
    /// through this.
    pub fn ban_peer(&self, peer: ServerId, remaining: Duration) {
        self.bans.ban(peer.index(), remaining);
    }

    /// Whether `peer`'s inbound traffic is currently refused.
    pub fn is_banned(&self, peer: ServerId) -> bool {
        self.bans.is_banned(peer.index())
    }

    /// Stops all transport threads and waits for them.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Threads observe the flag within one poll interval; detaching is
        // acceptable on drop (shutdown() offers the joining variant).
    }
}

fn accept_loop(
    listener: TcpListener,
    incoming_tx: Sender<(ServerId, NetMessage)>,
    traffic: Arc<Vec<PeerTraffic>>,
    bans: Arc<BanTable>,
    shutdown: Arc<AtomicBool>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Reap finished readers first: a connect/disconnect
                // churner must not grow the handle list unboundedly.
                readers.retain(|reader| !reader.is_finished());
                if readers.len() >= MAX_INBOUND_READERS {
                    drop(stream);
                    continue;
                }
                let incoming_tx = incoming_tx.clone();
                let shutdown = shutdown.clone();
                let traffic = traffic.clone();
                let bans = bans.clone();
                readers.push(std::thread::spawn(move || {
                    reader_loop(stream, incoming_tx, traffic, bans, shutdown);
                }));
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
}

fn reader_loop(
    stream: TcpStream,
    incoming_tx: Sender<(ServerId, NetMessage)>,
    traffic: Arc<Vec<PeerTraffic>>,
    bans: Arc<BanTable>,
    shutdown: Arc<AtomicBool>,
) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    // The first frame authenticates nothing — it merely names the peer;
    // blocks carry their own signatures (Definition 3.3 (i)).
    let from = match read_retry(&mut stream, &shutdown, crate::frame::read_frame::<_, Hello>) {
        Some(hello) => hello.from,
        None => return,
    };
    // The reconnect gate of the defense layer's time-decaying bans: a
    // banned peer's connection is dropped as soon as it names itself, and
    // the per-message check below closes connections that were already up
    // when the ban landed.
    if bans.is_banned(from.index()) {
        return;
    }
    // Blocks decoded here slice a pooled frame buffer (zero-copy receive
    // with buffer recycling): see `frame::read_net_message_pooled`. One
    // arena per connection, so a burst arriving off one socket reuses the
    // same buffers as soon as upstream drops them (duplicates, FWD
    // requests, rejected blocks).
    let mut arena = FrameArena::default();
    while !shutdown.load(Ordering::SeqCst) {
        if bans.is_banned(from.index()) {
            return;
        }
        match read_net_message_pooled(&mut stream, &mut arena) {
            Ok(message) => {
                if let Some(peer) = traffic.get(from.index()) {
                    peer.recv_msgs.fetch_add(1, Ordering::Relaxed);
                    peer.recv_bytes
                        .fetch_add(message.wire_len() as u64, Ordering::Relaxed);
                }
                if incoming_tx.send((from, message)).is_err() {
                    return;
                }
            }
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(err) if is_corrupt_payload(&err) => {
                // The bad payload was fully drained — the stream is still
                // frame-synced, so count the offense and keep reading
                // rather than handing the peer a free reconnect cycle.
                if let Some(peer) = traffic.get(from.index()) {
                    peer.recv_decode_errors.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Reads one frame via `read_one`, retrying on read timeouts until shutdown.
fn read_retry<T>(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    mut read_one: impl FnMut(&mut TcpStream) -> io::Result<T>,
) -> Option<T> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        match read_one(stream) {
            Ok(value) => return Some(value),
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return None,
        }
    }
}

fn sender_loop(
    me: ServerId,
    peer_index: usize,
    peer: SocketAddr,
    outbox: Receiver<NetMessage>,
    traffic: Arc<Vec<PeerTraffic>>,
    shutdown: Arc<AtomicBool>,
) {
    let mut connection: Option<TcpStream> = None;
    // Deterministic per-link jitter added to every backoff wait (see
    // `reconnect_jitter`).
    let jitter = reconnect_jitter(me, peer_index);
    // After a full failed connect burst the peer is marked down until this
    // deadline: queued messages drain (dropped — gossip's FWD mechanism
    // recovers missing blocks) without each one paying a connect burst.
    let mut down_until: Option<std::time::Instant> = None;
    while !shutdown.load(Ordering::SeqCst) {
        let message = match outbox.recv_timeout(POLL) {
            Ok(message) => message,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Ensure a connection; on failure, drop the message — gossip's FWD
        // mechanism recovers missing blocks, as under the lossy simulator.
        if connection.is_none() {
            let now = std::time::Instant::now();
            if down_until.is_none_or(|deadline| now >= deadline) {
                connection = connect_with_hello(me, peer, jitter, &shutdown);
                down_until = match connection {
                    Some(_) => None,
                    None => Some(now + BACKOFF_MAX + jitter),
                };
            }
        }
        // The zero-copy write path: a block's cached wire bytes stream
        // straight into the frame, no per-send re-encode.
        let mut written = false;
        if let Some(stream) = connection.as_mut() {
            written = write_net_message(stream, &message).is_ok();
            if !written {
                // Reconnect once and retry this message.
                connection = connect_with_hello(me, peer, jitter, &shutdown);
                if let Some(stream) = connection.as_mut() {
                    written = write_net_message(stream, &message).is_ok();
                    if !written {
                        connection = None;
                    }
                }
                if connection.is_none() {
                    down_until = Some(std::time::Instant::now() + BACKOFF_MAX + jitter);
                }
            }
        }
        if written {
            if let Some(counters) = traffic.get(peer_index) {
                counters.sent_msgs.fetch_add(1, Ordering::Relaxed);
                counters
                    .sent_bytes
                    .fetch_add(message.wire_len() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// One bounded reconnect burst: [`CONNECT_ATTEMPTS`] attempts with
/// exponential backoff from [`BACKOFF_INITIAL`] capped at [`BACKOFF_MAX`],
/// each wait stretched by the link's deterministic `jitter` (see
/// [`reconnect_jitter`]), abandoning promptly on shutdown.
fn connect_with_hello(
    me: ServerId,
    peer: SocketAddr,
    jitter: Duration,
    shutdown: &AtomicBool,
) -> Option<TcpStream> {
    let mut backoff = BACKOFF_INITIAL;
    for attempt in 0..CONNECT_ATTEMPTS {
        if shutdown.load(Ordering::SeqCst) {
            return None;
        }
        if let Ok(mut stream) = TcpStream::connect_timeout(&peer, Duration::from_millis(500)) {
            if stream.set_nodelay(true).is_err() {
                return None;
            }
            if write_frame(&mut stream, &Hello { from: me }).is_ok() {
                return Some(stream);
            }
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            sleep_interruptible(backoff + jitter, shutdown);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
    }
    None
}

/// Sleeps `duration` in [`POLL`]-sized slices, returning early on shutdown
/// so backoff waits never delay teardown.
fn sleep_interruptible(duration: Duration, shutdown: &AtomicBool) {
    let deadline = std::time::Instant::now() + duration;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return;
        }
        std::thread::sleep(POLL.min(remaining));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagbft_core::{Block, SeqNum};
    use dagbft_crypto::KeyRegistry;

    fn sample_message() -> NetMessage {
        let registry = KeyRegistry::generate(1, 1);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        NetMessage::Block(Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![],
            &signer,
        ))
    }

    fn localhost() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn two_endpoints_exchange_messages() {
        // Bind both with placeholder peer tables, then rebind with real
        // addresses: easiest is to bind A first, then B knowing A.
        let a = TcpTransport::bind(
            ServerId::new(0),
            localhost(),
            vec![localhost(), localhost()],
        )
        .unwrap();
        let b = TcpTransport::bind(
            ServerId::new(1),
            localhost(),
            vec![a.local_addr(), localhost()],
        )
        .unwrap();
        // Rebuild A with B's address so A can reply.
        let a_addr = a.local_addr();
        a.shutdown();
        let a = TcpTransport::bind(ServerId::new(0), a_addr, vec![localhost(), b.local_addr()])
            .unwrap();

        let message = sample_message();
        a.send(ServerId::new(1), message.clone());
        let (from, received) = b
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .expect("delivery");
        assert_eq!(from, ServerId::new(0));
        assert_eq!(received, message);

        b.send(ServerId::new(0), message.clone());
        let (from, received) = a
            .incoming()
            .recv_timeout(Duration::from_secs(5))
            .expect("reply delivery");
        assert_eq!(from, ServerId::new(1));
        assert_eq!(received, message);

        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn sender_backs_off_and_reconnects_when_peer_appears_late() {
        // Reserve a port, release it, and point A at it before anything
        // listens there.
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let b_addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let a =
            TcpTransport::bind(ServerId::new(0), localhost(), vec![localhost(), b_addr]).unwrap();
        // The first send exhausts a full backoff burst against the dead
        // address and is dropped (FWD recovery covers losses in the real
        // system); the peer is marked down.
        a.send(ServerId::new(1), sample_message());
        // Now the peer comes up on that port; a later send must get
        // through once the down cool-down expires.
        let b = TcpTransport::bind(ServerId::new(1), b_addr, vec![a.local_addr(), localhost()])
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut delivered = false;
        while std::time::Instant::now() < deadline {
            a.send(ServerId::new(1), sample_message());
            if b.incoming()
                .recv_timeout(Duration::from_millis(500))
                .is_ok()
            {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "sender must reconnect after peer comes up");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn send_to_self_is_dropped() {
        let transport =
            TcpTransport::bind(ServerId::new(0), localhost(), vec![localhost()]).unwrap();
        transport.send(ServerId::new(0), sample_message());
        assert!(transport
            .incoming()
            .recv_timeout(Duration::from_millis(200))
            .is_err());
        transport.shutdown();
    }
}
