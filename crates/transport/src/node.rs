//! The node event loop: a [`Shim`] driven by a [`TcpTransport`].

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dagbft_core::{
    shim::SetupError, BlockStore, DeterministicProtocol, Label, NetCommand, RecoverError,
    RecoveryReport, Shim, ShimConfig, TimeMs,
};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_metrics::{publish, MetricsRegistry, MetricsServer};

use crate::tcp::TcpTransport;

/// Pacing configuration for a node's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// Interval between `disseminate()` calls (Algorithm 3, lines 10–11).
    pub disseminate_every_ms: u64,
    /// Interval between `FWD` retry ticks.
    pub tick_every_ms: u64,
    /// Maximum messages folded into one deferred-admission burst by the
    /// event loop — bounds the latency added by draining the channel.
    /// Wider caps amortize verification better under sustained load;
    /// narrower ones keep tail latency low (clamped to at least 1).
    pub ingest_burst_cap: usize,
    /// When set, the node serves a live JSON metrics snapshot over HTTP
    /// from this address (port 0 binds ephemerally — read the bound
    /// address back via [`NodeHandle::metrics_addr`]). The event loop
    /// mirrors every counter documented in `docs/METRICS.md` into the
    /// endpoint's registry on each tick (`tick_every_ms` cadence), off
    /// the hot path. `None` (the default) spawns no endpoint and costs
    /// nothing.
    pub metrics_addr: Option<SocketAddr>,
}

impl NodeConfig {
    /// Caps the per-iteration ingest burst (clamped to at least 1).
    pub fn with_ingest_burst_cap(mut self, cap: usize) -> Self {
        self.ingest_burst_cap = cap.max(1);
        self
    }

    /// Serves live metrics over HTTP from `addr` (see
    /// [`NodeConfig::metrics_addr`]).
    pub fn with_metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            disseminate_every_ms: 50,
            tick_every_ms: 100,
            ingest_burst_cap: 1024,
            metrics_addr: None,
        }
    }
}

/// Control handle for a running node thread.
///
/// Dropping the handle without [`NodeHandle::stop`] detaches the node.
#[derive(Debug)]
pub struct NodeHandle<P: DeterministicProtocol> {
    me: ServerId,
    requests_tx: Sender<(Label, P::Request)>,
    indications_rx: Receiver<(Label, P::Indication)>,
    stop_tx: Sender<()>,
    metrics_addr: Option<SocketAddr>,
    thread: Option<JoinHandle<Shim<P>>>,
}

impl<P: DeterministicProtocol> NodeHandle<P> {
    /// The server this node runs as.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The bound address of this node's live metrics endpoint (`None`
    /// unless [`NodeConfig::metrics_addr`] was set). Scrape it with
    /// [`dagbft_metrics::scrape`] or any HTTP client.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Submits `request(label, request)` to the node's shim.
    pub fn request(&self, label: Label, request: P::Request) {
        let _ = self.requests_tx.send((label, request));
    }

    /// The channel of indications the node's user receives.
    pub fn indications(&self) -> &Receiver<(Label, P::Indication)> {
        &self.indications_rx
    }

    /// Stops the node and returns its final shim (DAG, stats) for
    /// inspection.
    pub fn stop(mut self) -> Shim<P> {
        let _ = self.stop_tx.send(());
        self.thread
            .take()
            .expect("stop called once")
            .join()
            .expect("node thread exits cleanly")
    }
}

/// Spawns a node: a [`Shim<P>`] event loop over an already-bound
/// transport.
///
/// The admission engine comes from `config` (see
/// `dagbft_core::AdmissionMode`): with
/// `ShimConfig::with_admission(AdmissionMode::Parallel { workers })` the
/// node's signature checks run on a per-node verification pool, spreading
/// hostile-burst admission waves across cores. The event loop still waits
/// for each wave's verdicts, so prefer the default batched engine unless
/// waves are wide enough to amortize the per-chunk channel round-trip.
///
/// # Errors
///
/// [`SetupError::UnknownServer`] if `registry` lacks a key for
/// `transport.me()`.
pub fn spawn_node<P>(
    config: ShimConfig,
    node_config: NodeConfig,
    registry: &KeyRegistry,
    transport: TcpTransport,
) -> Result<NodeHandle<P>, SetupError>
where
    P: DeterministicProtocol + Send + Sync + 'static,
    P::Request: Send,
    P::Message: Send,
    P::Indication: Send,
{
    let shim: Shim<P> = Shim::new(transport.me(), config, registry)?;
    Ok(spawn_with_shim(
        shim,
        node_config,
        registry.clone(),
        None,
        transport,
    ))
}

/// Spawns a node with a durable [`BlockStore`]: the shim is **recovered**
/// from whatever the store holds (empty store → fresh start) before the
/// event loop begins, and every block admitted from then on is journaled
/// through the same store.
///
/// On restart after a crash the journal replays — past the latest
/// snapshot, only the suffix — and gossip resumes from the recovered
/// frontier. Blocks lost to a torn journal tail come back through the
/// normal `FWD` path: peers' newer blocks reference them, the shim
/// requests the missing range, and the re-admitted blocks are re-journaled.
/// The recovered builder never reuses a sequence number (§7's
/// equivocation caveat): recovery refuses to resume below the highest
/// self-built record ever synced.
///
/// Indications raised by the replay are delivered to the (restarted)
/// user through the normal channel — restart semantics are at-least-once.
///
/// # Errors
///
/// Any [`RecoverError`]: an unreadable or corrupted journal, a broken
/// topology, a diverged snapshot, or a registry missing
/// `transport.me()`'s key.
pub fn spawn_node_with_store<P>(
    config: ShimConfig,
    node_config: NodeConfig,
    registry: &KeyRegistry,
    transport: TcpTransport,
    store: Box<dyn BlockStore>,
) -> Result<(NodeHandle<P>, RecoveryReport), RecoverError>
where
    P: DeterministicProtocol + Send + Sync + 'static,
    P::Request: Send,
    P::Message: Send,
    P::Indication: Send,
{
    let (shim, report) = Shim::recover_from_store(transport.me(), config, registry, store)?;
    let handle = spawn_with_shim(shim, node_config, registry.clone(), Some(report), transport);
    Ok((handle, report))
}

fn spawn_with_shim<P>(
    mut shim: Shim<P>,
    node_config: NodeConfig,
    registry: KeyRegistry,
    recovery: Option<RecoveryReport>,
    transport: TcpTransport,
) -> NodeHandle<P>
where
    P: DeterministicProtocol + Send + Sync + 'static,
    P::Request: Send,
    P::Message: Send,
    P::Indication: Send,
{
    let me = transport.me();
    let (requests_tx, requests_rx) = unbounded::<(Label, P::Request)>();
    let (indications_tx, indications_rx) = unbounded();
    let (stop_tx, stop_rx) = unbounded::<()>();
    let pacing = node_config;

    // The observability side-car: bind the endpoint before the event
    // loop starts so the caller learns the resolved address, then hand
    // the server to the loop thread for shutdown. A bind failure is
    // reported by running without an endpoint rather than killing the
    // node — metrics must never wedge consensus.
    let (metrics, metrics_server) = match pacing.metrics_addr {
        Some(addr) => {
            let registry_metrics = Arc::new(MetricsRegistry::new());
            match MetricsServer::serve(registry_metrics.clone(), addr) {
                Ok(server) => (Some(registry_metrics), Some(server)),
                Err(_) => (None, None),
            }
        }
        None => (None, None),
    };
    let metrics_addr = metrics_server.as_ref().map(MetricsServer::local_addr);
    if let (Some(metrics), Some(report)) = (metrics.as_ref(), recovery.as_ref()) {
        publish::publish_recovery(metrics, report);
    }

    let thread = std::thread::spawn(move || {
        let start = Instant::now();
        let now_ms = |start: Instant| -> TimeMs { start.elapsed().as_millis() as TimeMs };
        let mut next_disseminate = 0;
        let mut next_tick = pacing.tick_every_ms;
        // Per-peer decode-error counts already charged to the defense
        // layer, so each tick feeds only the delta.
        let mut charged_decode_errors = vec![0u64; transport.peer_traffic().len()];
        loop {
            // Run timers that are due.
            let now = now_ms(start);
            if now >= next_disseminate {
                let commands = shim.disseminate(now);
                route(&transport, commands);
                next_disseminate = now + pacing.disseminate_every_ms;
            }
            if now >= next_tick {
                let commands = shim.on_tick(now);
                route(&transport, commands);
                next_tick = now + pacing.tick_every_ms;
                sync_defense(&mut shim, &transport, &mut charged_decode_errors, now);
                if let Some(metrics) = metrics.as_ref() {
                    publish_node_metrics(metrics, &shim, &transport, &registry, now);
                }
            }
            for indication in shim.poll_indications() {
                let _ = indications_tx.send(indication);
            }

            // Wait for the next message, request, or timer deadline.
            let wait = next_disseminate
                .min(next_tick)
                .saturating_sub(now_ms(start))
                .clamp(1, 50);
            crossbeam::channel::select! {
                recv(transport.incoming()) -> incoming => {
                    if let Ok(first) = incoming {
                        // Drain whatever else already queued up behind the
                        // first message and admit the whole run as one
                        // deferred burst: blocks are indexed first, then
                        // verified in cross-cascade waves and interpreted
                        // once — the ingest shape the parallel admission
                        // pool is built for.
                        let mut batch = vec![first];
                        while batch.len() < pacing.ingest_burst_cap.max(1) {
                            match transport.incoming().try_recv() {
                                Ok(message) => batch.push(message),
                                Err(_) => break,
                            }
                        }
                        let now = now_ms(start);
                        let commands = shim.on_message_burst(batch, now);
                        route(&transport, commands);
                    }
                }
                recv(requests_rx) -> request => {
                    if let Ok((label, request)) = request {
                        shim.request(label, request);
                    }
                }
                recv(stop_rx) -> _ => {
                    if let Some(server) = metrics_server {
                        server.shutdown();
                    }
                    transport.shutdown();
                    return shim;
                }
                default(Duration::from_millis(wait)) => {}
            }
        }
    });

    NodeHandle {
        me,
        requests_tx,
        indications_rx,
        stop_tx,
        metrics_addr,
        thread: Some(thread),
    }
}

/// Couples the shim's defense layer to the transport, on the tick
/// cadence: malformed frames counted by the reader threads are charged
/// to their peers as [`dagbft_core::Offense::MalformedFrame`] offenses
/// (delta since the last tick — the reader only counts, the defense
/// layer scores), and every active ban the scoring engine holds is
/// mirrored into the transport's connection-level ban table so a banned
/// peer's reconnects are refused at the socket, before any frame is
/// decoded.
fn sync_defense<P>(
    shim: &mut Shim<P>,
    transport: &TcpTransport,
    charged_decode_errors: &mut [u64],
    now: TimeMs,
) where
    P: DeterministicProtocol,
{
    if !shim.gossip().defense().is_enabled() {
        return;
    }
    for (peer, traffic) in transport.peer_traffic().iter().enumerate() {
        let seen = traffic.recv_decode_errors;
        let charged = &mut charged_decode_errors[peer];
        if seen > *charged {
            shim.note_malformed_frames(ServerId::new(peer as u32), seen - *charged, now);
            *charged = seen;
        }
    }
    for (peer, until) in shim.gossip().defense().bans(now) {
        transport.ban_peer(peer, Duration::from_millis(until.saturating_sub(now)));
    }
}

/// Mirrors every live counter the node owns into the endpoint's
/// registry: gossip admission, wave/burst shape, interpreter footprint,
/// crypto totals, store health, per-peer transport traffic, and
/// node-level liveness gauges. Runs on the tick cadence, off the
/// admission hot path.
fn publish_node_metrics<P>(
    metrics: &MetricsRegistry,
    shim: &Shim<P>,
    transport: &TcpTransport,
    registry: &KeyRegistry,
    now: TimeMs,
) where
    P: DeterministicProtocol,
{
    publish::publish_gossip(metrics, shim.gossip().stats());
    publish::publish_waves(metrics, shim.gossip().wave_stats());
    publish::publish_defense(metrics, shim.gossip().defense(), now);
    publish::publish_footprint(metrics, &shim.footprint());
    publish::publish_crypto(metrics, registry.metrics());
    publish::publish_store_health(metrics, shim.store_attached(), shim.store_error().is_some());
    publish::publish_node(
        metrics,
        now,
        shim.dag().len() as u64,
        shim.pending_requests() as u64,
    );
    for (peer, traffic) in transport.peer_traffic().iter().enumerate() {
        publish::publish_peer(
            metrics,
            peer,
            traffic.sent_msgs,
            traffic.sent_bytes,
            traffic.recv_msgs,
            traffic.recv_bytes,
        );
    }
}

fn route(transport: &TcpTransport, commands: Vec<NetCommand>) {
    for command in commands {
        match command {
            NetCommand::Broadcast { message } => transport.broadcast(message),
            NetCommand::SendTo { to, message } => transport.send(to, message),
        }
    }
}

/// Spawns `n` nodes on localhost (ephemeral ports) running `shim(P)` over
/// TCP, all sharing one deterministic key registry.
///
/// # Errors
///
/// Propagates listener bind failures.
pub fn spawn_local_cluster<P>(
    n: usize,
    config: ShimConfig,
    node_config: NodeConfig,
    seed: u64,
) -> std::io::Result<(Vec<NodeHandle<P>>, KeyRegistry)>
where
    P: DeterministicProtocol + Send + Sync + 'static,
    P::Request: Send,
    P::Message: Send,
    P::Indication: Send,
{
    let registry = KeyRegistry::generate(n, seed);
    // Phase 1: bind all listeners to learn the port assignment.
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(std::net::TcpListener::local_addr)
        .collect::<std::io::Result<_>>()?;
    // Phase 2: release the probe listeners, rebind real transports on the
    // same ports with the full peer table.
    drop(listeners);
    let mut handles = Vec::with_capacity(n);
    for (index, addr) in addrs.iter().enumerate() {
        let transport = TcpTransport::bind(ServerId::new(index as u32), *addr, addrs.clone())?;
        let handle = spawn_node::<P>(config, node_config, &registry, transport)
            .expect("registry covers all servers");
        handles.push(handle);
    }
    Ok((handles, registry))
}
