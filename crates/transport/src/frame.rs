//! Length-prefixed framing over byte streams.
//!
//! Wire layout per frame: `u32` little-endian payload length, then the
//! payload (a canonical [`dagbft_core::NetMessage`] encoding, or the
//! 4-byte hello). A length cap protects receivers from hostile prefixes.
//!
//! [`NetMessage`]s get a dedicated zero-copy pair: [`write_net_message`]
//! streams a block's cached wire bytes straight into the frame (no
//! intermediate encode buffer), and [`read_net_message`] decodes the
//! received frame as a shared buffer so the block's wire image and request
//! payloads are slices of it rather than copies.

use std::io::{self, Read, Write};

use bytes::Bytes;
use dagbft_codec::{decode_from_bytes, decode_from_slice, encode_to_vec, WireDecode, WireEncode};
use dagbft_core::NetMessage;
use dagbft_crypto::ServerId;

/// Maximum accepted frame payload (16 MiB) — far above any legitimate
/// block, low enough to bound allocation on garbage input.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Writes one framed, wire-encoded value.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write, T: WireEncode>(writer: &mut W, value: &T) -> io::Result<()> {
    let payload = encode_to_vec(value);
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// Reads one framed value.
///
/// # Errors
///
/// * I/O errors from the reader (including clean EOF as
///   [`io::ErrorKind::UnexpectedEof`]);
/// * [`io::ErrorKind::InvalidData`] for oversized frames or payloads that
///   fail to decode.
pub fn read_frame<R: Read, T: WireDecode>(reader: &mut R) -> io::Result<T> {
    let payload = read_payload(reader)?;
    decode_from_slice(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// Reads one frame's raw payload: length prefix, cap check, body.
fn read_payload<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one framed [`NetMessage`] without building an intermediate
/// encode buffer: length prefix, discriminant byte, then the message's
/// cached payload bytes verbatim (a block's canonical wire image, a
/// forward request's digest). The encode-once fast path of the send loop.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_net_message<W: Write>(writer: &mut W, message: &NetMessage) -> io::Result<()> {
    let len = message.wire_len() as u32;
    let (discriminant, payload) = message.payload_view();
    // One header write (length prefix + discriminant), one payload write —
    // two syscalls per message on an unbuffered stream.
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4] = discriminant;
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one framed [`NetMessage`], decoding the payload as a *shared*
/// buffer: a received block's wire image and request payloads are
/// zero-copy slices of the frame allocation.
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_net_message<R: Read>(reader: &mut R) -> io::Result<NetMessage> {
    // `Bytes::from(Vec)` moves the frame allocation; the decoded block's
    // wire image and payloads are windows into it.
    let payload = Bytes::from(read_payload(reader)?);
    decode_from_bytes(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// Default number of frame buffers a [`FrameArena`] tracks for recycling.
pub const DEFAULT_ARENA_BUFFERS: usize = 64;

/// Largest buffer capacity the arena will pool for reuse (256 KiB).
///
/// Frames may legitimately reach [`MAX_FRAME_LEN`], but *pooling* such
/// buffers would let a slow-loris peer pin
/// `buffers × MAX_FRAME_LEN` ≈ 1 GiB of idle capacity per connection by
/// announcing giant length prefixes and never completing the frames.
/// Oversized buffers are served and then dropped — only modest ones
/// re-enter the pool, bounding each connection's spare memory to
/// `buffers × MAX_SPARE_BUFFER_BYTES` (16 MiB with the defaults).
pub const MAX_SPARE_BUFFER_BYTES: usize = 256 * 1024;

/// Usage counters of one [`FrameArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameArenaStats {
    /// Frames read through the arena.
    pub frames: u64,
    /// Frames served from a recycled buffer (no allocation).
    pub recycled: u64,
    /// Buffers reclaimed after their last reference dropped.
    pub reclaimed: u64,
    /// Buffers returned directly after a failed frame read (disconnect or
    /// drain timeout mid-payload).
    pub released: u64,
}

/// A pool of reusable frame buffers for the receive path.
///
/// [`read_net_message_pooled`] reads each frame into a buffer drawn from
/// the arena and decodes it as shared [`Bytes`], so the message's payload
/// views are zero-copy windows into the pooled allocation. The arena
/// keeps a handle to every buffer it lends out; once all *other*
/// references drop — the frame was a `FWD` request, a duplicate, or a
/// rejected block, i.e. nothing retained its bytes — the buffer is
/// reclaimed and reused, capacity intact. Admitted blocks keep their
/// buffer alive for as long as the DAG caches their wire image: those are
/// permanently handed over (the arena forgets the oldest lent handles
/// past its tracking capacity), which is exactly the copy the zero-copy
/// wire path is built around.
///
/// Under a hostile duplicate/garbage flood this makes the receive loop
/// allocation-free in steady state; under honest traffic it costs one
/// tracked handle per in-flight frame.
#[derive(Debug)]
pub struct FrameArena {
    /// Reclaimed buffers ready for reuse (capacity preserved).
    spares: Vec<Vec<u8>>,
    /// Handles to buffers currently lent out, oldest first.
    lent: Vec<Bytes>,
    /// Maximum buffers tracked across `spares` and `lent`.
    buffers: usize,
    stats: FrameArenaStats,
}

impl Default for FrameArena {
    fn default() -> Self {
        FrameArena::new(DEFAULT_ARENA_BUFFERS)
    }
}

impl FrameArena {
    /// Creates an arena tracking at most `buffers` buffers (at least 1).
    pub fn new(buffers: usize) -> Self {
        FrameArena {
            spares: Vec::new(),
            lent: Vec::new(),
            buffers: buffers.max(1),
            stats: FrameArenaStats::default(),
        }
    }

    /// Usage counters.
    pub fn stats(&self) -> FrameArenaStats {
        self.stats
    }

    /// Buffers currently lent out (still referenced or awaiting sweep).
    pub fn lent(&self) -> usize {
        self.lent.len()
    }

    /// Sweeps lent handles, reclaiming every buffer whose other
    /// references have all dropped; returns the number reclaimed.
    pub fn sweep(&mut self) -> usize {
        let mut reclaimed = 0;
        let mut still_lent = Vec::with_capacity(self.lent.len());
        for handle in self.lent.drain(..) {
            match handle.try_reclaim() {
                Ok(buffer) => {
                    reclaimed += 1;
                    if self.spares.len() < self.buffers
                        && buffer.capacity() <= MAX_SPARE_BUFFER_BYTES
                    {
                        self.spares.push(buffer);
                    }
                }
                Err(handle) => still_lent.push(handle),
            }
        }
        self.lent = still_lent;
        self.stats.reclaimed += reclaimed as u64;
        reclaimed
    }

    /// Draws a cleared buffer: a recycled spare when available, a fresh
    /// allocation otherwise.
    fn acquire(&mut self) -> Vec<u8> {
        self.sweep();
        match self.spares.pop() {
            Some(mut buffer) => {
                buffer.clear();
                self.stats.recycled += 1;
                buffer
            }
            None => Vec::new(),
        }
    }

    /// Returns an unused buffer straight to the pool, capacity intact.
    ///
    /// The receive path calls this when a frame fails mid-read (peer
    /// disconnect, drain timeout): the buffer never reached a decoder, so
    /// it can be reused immediately instead of leaking out of the pool.
    pub fn release(&mut self, mut buffer: Vec<u8>) {
        self.stats.released += 1;
        if self.spares.len() < self.buffers && buffer.capacity() <= MAX_SPARE_BUFFER_BYTES {
            buffer.clear();
            self.spares.push(buffer);
        }
    }

    /// Registers a lent-out payload for future reclamation. Past the
    /// tracking capacity the oldest handle is handed over for good (its
    /// holder — typically the DAG's cached wire image — now owns the
    /// allocation's lifetime).
    fn track(&mut self, payload: Bytes) {
        self.stats.frames += 1;
        if self.lent.len() >= self.buffers {
            self.lent.remove(0);
        }
        self.lent.push(payload);
    }
}

/// Maximum consecutive idle reads tolerated while draining a partially
/// received payload. With the transport's 25 ms read timeout this bounds a
/// stalled mid-frame peer to ~10 s before the connection is dropped.
const MAX_MIDFRAME_IDLE_READS: u32 = 400;

/// Fills `buf` completely, retrying across read timeouts.
///
/// Once the length prefix has been consumed the stream is mid-frame:
/// propagating a timeout would make the caller re-read the next bytes as
/// a fresh length prefix and desynchronise the framing. So partial
/// payloads are drained across timeouts, bounded by
/// [`MAX_MIDFRAME_IDLE_READS`] so a hung peer cannot pin the reader.
fn read_exact_draining<R: Read>(reader: &mut R, mut buf: &mut [u8]) -> io::Result<()> {
    let mut idle_reads = 0u32;
    while !buf.is_empty() {
        match reader.read(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => {
                idle_reads = 0;
                buf = &mut buf[n..];
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                idle_reads += 1;
                if idle_reads >= MAX_MIDFRAME_IDLE_READS {
                    return Err(err);
                }
            }
            Err(err) => return Err(err),
        }
    }
    Ok(())
}

/// Reads a frame's `u32` length prefix with zero-or-all semantics: a
/// timeout before the first byte propagates (nothing consumed, the whole
/// frame read can be retried), while a timeout after a partial prefix
/// drains the remaining bytes so retries never misparse payload bytes as
/// a length.
fn read_len_prefix<R: Read>(reader: &mut R) -> io::Result<usize> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got == 0 {
        match reader.read(&mut len_bytes) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed between frames",
                ));
            }
            Ok(n) => got = n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    read_exact_draining(reader, &mut len_bytes[got..])?;
    Ok(u32::from_le_bytes(len_bytes) as usize)
}

/// [`read_net_message`] over a [`FrameArena`]: the frame is read into a
/// pooled buffer and decoded as shared [`Bytes`], and the buffer is
/// recycled once every reference to it drops.
///
/// A frame that fails mid-payload (peer disconnect, drain timeout) is
/// cleaned up fully: the partial payload is discarded and its buffer is
/// [released](FrameArena::release) back to the arena, so a flapping
/// connection never bleeds pooled allocations.
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_net_message_pooled<R: Read>(
    reader: &mut R,
    arena: &mut FrameArena,
) -> io::Result<NetMessage> {
    let len = read_len_prefix(reader)?;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut buffer = arena.acquire();
    buffer.resize(len, 0);
    if let Err(err) = read_exact_draining(reader, &mut buffer) {
        arena.release(buffer);
        return Err(err);
    }
    let payload = Bytes::from(buffer);
    let message = decode_from_bytes(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, CorruptPayload(err.to_string())));
    arena.track(payload);
    message
}

/// Error payload marking a frame whose body was fully consumed but failed
/// to decode. The stream is still frame-synced after this error — the
/// length prefix already drained the bad payload — so a reader may count
/// the offense against the peer and keep reading (see
/// [`is_corrupt_payload`]). Every other framing error leaves the stream
/// position unreliable and must drop the connection.
#[derive(Debug)]
struct CorruptPayload(String);

impl std::fmt::Display for CorruptPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt frame payload: {}", self.0)
    }
}

impl std::error::Error for CorruptPayload {}

/// Whether `err` marks a fully consumed, frame-synced-but-undecodable
/// payload from [`read_net_message_pooled`] — the one framing error a
/// reader can survive without desynchronising.
pub fn is_corrupt_payload(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::InvalidData
        && err
            .get_ref()
            .is_some_and(|inner| inner.is::<CorruptPayload>())
}

/// The first frame on every outbound connection: the sender's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting server.
    pub from: ServerId,
}

impl WireEncode for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
    }
}

impl WireDecode for Hello {
    fn decode(reader: &mut dagbft_codec::Reader<'_>) -> Result<Self, dagbft_codec::DecodeError> {
        Ok(Hello {
            from: ServerId::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_buffer() {
        let mut buffer = Vec::new();
        write_frame(
            &mut buffer,
            &Hello {
                from: ServerId::new(3),
            },
        )
        .unwrap();
        write_frame(&mut buffer, &42u64).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        let hello: Hello = read_frame(&mut cursor).unwrap();
        assert_eq!(hello.from, ServerId::new(3));
        let value: u64 = read_frame(&mut cursor).unwrap();
        assert_eq!(value, 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &7u64).unwrap();
        buffer.truncate(buffer.len() - 2);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&2u32.to_le_bytes());
        buffer.extend_from_slice(&[0xff, 0xff]);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, Hello>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    fn sample_block() -> dagbft_core::Block {
        use dagbft_core::{Label, LabeledRequest, SeqNum};
        use dagbft_crypto::KeyRegistry;
        let registry = KeyRegistry::generate(1, 5);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        dagbft_core::Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &7u64)],
            &signer,
        )
    }

    #[test]
    fn net_message_fast_path_matches_generic_frame() {
        let block = sample_block();
        for message in [
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ] {
            let mut fast = Vec::new();
            write_net_message(&mut fast, &message).unwrap();
            let mut generic = Vec::new();
            write_frame(&mut generic, &message).unwrap();
            assert_eq!(fast, generic, "fast path must produce identical frames");

            let mut cursor = io::Cursor::new(fast);
            let decoded = read_net_message(&mut cursor).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn pooled_read_matches_unpooled_and_recycles_dropped_frames() {
        let block = sample_block();
        let messages = [
            NetMessage::FwdRequest(block.block_ref()),
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ];
        let mut wire = Vec::new();
        for message in &messages {
            write_net_message(&mut wire, message).unwrap();
        }
        let mut arena = FrameArena::new(8);
        let mut cursor = io::Cursor::new(wire);
        // FWD requests copy their 32-byte ref out of the frame, so their
        // buffers are reclaimable immediately; by the third read the
        // arena serves a recycled buffer.
        let first = read_net_message_pooled(&mut cursor, &mut arena).unwrap();
        assert_eq!(first, messages[0]);
        let second = read_net_message_pooled(&mut cursor, &mut arena).unwrap();
        assert_eq!(second, messages[1]);
        let third = read_net_message_pooled(&mut cursor, &mut arena).unwrap();
        assert_eq!(third, messages[2]);
        assert_eq!(arena.stats().frames, 3);
        assert!(
            arena.stats().recycled >= 1,
            "fwd frame buffer reused: {:?}",
            arena.stats()
        );
        // The decoded block's wire image is a zero-copy window into the
        // pooled frame, which therefore stays lent out…
        let NetMessage::Block(received) = &second else {
            panic!("expected a block");
        };
        assert!(received.wire_bytes().ref_count() > 1);
        drop(second);
        // …until the block drops, after which a sweep reclaims it.
        arena.sweep();
        assert_eq!(arena.lent(), 0);
        assert_eq!(arena.stats().reclaimed, 3);
    }

    #[test]
    fn arena_hands_over_oldest_past_capacity() {
        let block = sample_block();
        let mut wire = Vec::new();
        for _ in 0..3 {
            write_net_message(&mut wire, &NetMessage::Block(block.clone())).unwrap();
        }
        let mut arena = FrameArena::new(2);
        let mut cursor = io::Cursor::new(wire);
        // All three decoded blocks retain their frames; the arena only
        // tracks the newest two and permanently hands over the oldest.
        let kept: Vec<NetMessage> = (0..3)
            .map(|_| read_net_message_pooled(&mut cursor, &mut arena).unwrap())
            .collect();
        assert_eq!(arena.lent(), 2);
        drop(kept);
        arena.sweep();
        assert_eq!(arena.stats().reclaimed, 2);
    }

    #[test]
    fn pooled_read_rejects_oversized_and_garbage() {
        let mut arena = FrameArena::new(4);
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message_pooled(&mut cursor, &mut arena)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&1u32.to_le_bytes());
        buffer.push(9); // invalid discriminant
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message_pooled(&mut cursor, &mut arena)
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        // The garbage frame's buffer is still recycled.
        arena.sweep();
        assert_eq!(arena.stats().reclaimed, 1);
    }

    #[test]
    fn partial_frame_releases_buffer_instead_of_poisoning_arena() {
        let block = sample_block();
        let message = NetMessage::Block(block);
        let mut wire = Vec::new();
        write_net_message(&mut wire, &message).unwrap();

        // A disconnect mid-payload: the length prefix and half the payload
        // arrive, then the stream ends.
        let mut truncated = wire.clone();
        truncated.truncate(wire.len() - wire.len() / 2);
        let mut arena = FrameArena::new(4);
        let mut cursor = io::Cursor::new(truncated);
        let err = read_net_message_pooled(&mut cursor, &mut arena).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // The partial buffer went back to the pool, not into the void.
        assert_eq!(arena.stats().released, 1);
        assert_eq!(arena.lent(), 0);

        // The released buffer is recycled by the next (complete) frame.
        let mut cursor = io::Cursor::new(wire);
        let decoded = read_net_message_pooled(&mut cursor, &mut arena).unwrap();
        assert_eq!(decoded, message);
        assert_eq!(arena.stats().recycled, 1);
    }

    /// A reader that yields timeouts between single-byte reads — the shape
    /// of a slow peer on a stream with a read timeout.
    struct Trickle {
        data: Vec<u8>,
        at: usize,
        give_byte: bool,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.data.len() {
                return Ok(0);
            }
            self.give_byte = !self.give_byte;
            if !self.give_byte {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            buf[0] = self.data[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn mid_frame_timeouts_are_drained_not_desynced() {
        let block = sample_block();
        let messages = [
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ];
        let mut wire = Vec::new();
        for message in &messages {
            write_net_message(&mut wire, message).unwrap();
        }
        let mut trickle = Trickle {
            data: wire,
            at: 0,
            give_byte: false,
        };
        let mut arena = FrameArena::new(4);
        // The length prefix still goes through read_exact, which bails on
        // the first timeout — retry it like the transport's read loop does.
        for expected in &messages {
            let received = loop {
                match read_net_message_pooled(&mut trickle, &mut arena) {
                    Ok(message) => break message,
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => continue,
                    Err(err) => panic!("unexpected error: {err}"),
                }
            };
            assert_eq!(&received, expected);
        }
    }

    #[test]
    fn read_net_message_rejects_oversized_and_garbage() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let mut buffer = Vec::new();
        buffer.extend_from_slice(&1u32.to_le_bytes());
        buffer.push(9); // invalid discriminant
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
