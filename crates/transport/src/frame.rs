//! Length-prefixed framing over byte streams.
//!
//! Wire layout per frame: `u32` little-endian payload length, then the
//! payload (a canonical [`dagbft_core::NetMessage`] encoding, or the
//! 4-byte hello). A length cap protects receivers from hostile prefixes.

use std::io::{self, Read, Write};

use dagbft_codec::{decode_from_slice, encode_to_vec, WireDecode, WireEncode};
use dagbft_crypto::ServerId;

/// Maximum accepted frame payload (16 MiB) — far above any legitimate
/// block, low enough to bound allocation on garbage input.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Writes one framed, wire-encoded value.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write, T: WireEncode>(writer: &mut W, value: &T) -> io::Result<()> {
    let payload = encode_to_vec(value);
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// Reads one framed value.
///
/// # Errors
///
/// * I/O errors from the reader (including clean EOF as
///   [`io::ErrorKind::UnexpectedEof`]);
/// * [`io::ErrorKind::InvalidData`] for oversized frames or payloads that
///   fail to decode.
pub fn read_frame<R: Read, T: WireDecode>(reader: &mut R) -> io::Result<T> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode_from_slice(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// The first frame on every outbound connection: the sender's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting server.
    pub from: ServerId,
}

impl WireEncode for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
    }
}

impl WireDecode for Hello {
    fn decode(reader: &mut dagbft_codec::Reader<'_>) -> Result<Self, dagbft_codec::DecodeError> {
        Ok(Hello {
            from: ServerId::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_buffer() {
        let mut buffer = Vec::new();
        write_frame(
            &mut buffer,
            &Hello {
                from: ServerId::new(3),
            },
        )
        .unwrap();
        write_frame(&mut buffer, &42u64).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        let hello: Hello = read_frame(&mut cursor).unwrap();
        assert_eq!(hello.from, ServerId::new(3));
        let value: u64 = read_frame(&mut cursor).unwrap();
        assert_eq!(value, 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &7u64).unwrap();
        buffer.truncate(buffer.len() - 2);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&2u32.to_le_bytes());
        buffer.extend_from_slice(&[0xff, 0xff]);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, Hello>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
