//! Length-prefixed framing over byte streams.
//!
//! Wire layout per frame: `u32` little-endian payload length, then the
//! payload (a canonical [`dagbft_core::NetMessage`] encoding, or the
//! 4-byte hello). A length cap protects receivers from hostile prefixes.
//!
//! [`NetMessage`]s get a dedicated zero-copy pair: [`write_net_message`]
//! streams a block's cached wire bytes straight into the frame (no
//! intermediate encode buffer), and [`read_net_message`] decodes the
//! received frame as a shared buffer so the block's wire image and request
//! payloads are slices of it rather than copies.

use std::io::{self, Read, Write};

use bytes::Bytes;
use dagbft_codec::{decode_from_bytes, decode_from_slice, encode_to_vec, WireDecode, WireEncode};
use dagbft_core::NetMessage;
use dagbft_crypto::ServerId;

/// Maximum accepted frame payload (16 MiB) — far above any legitimate
/// block, low enough to bound allocation on garbage input.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Writes one framed, wire-encoded value.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame<W: Write, T: WireEncode>(writer: &mut W, value: &T) -> io::Result<()> {
    let payload = encode_to_vec(value);
    let len = payload.len() as u32;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// Reads one framed value.
///
/// # Errors
///
/// * I/O errors from the reader (including clean EOF as
///   [`io::ErrorKind::UnexpectedEof`]);
/// * [`io::ErrorKind::InvalidData`] for oversized frames or payloads that
///   fail to decode.
pub fn read_frame<R: Read, T: WireDecode>(reader: &mut R) -> io::Result<T> {
    let payload = read_payload(reader)?;
    decode_from_slice(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// Reads one frame's raw payload: length prefix, cap check, body.
fn read_payload<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one framed [`NetMessage`] without building an intermediate
/// encode buffer: length prefix, discriminant byte, then the message's
/// cached payload bytes verbatim (a block's canonical wire image, a
/// forward request's digest). The encode-once fast path of the send loop.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_net_message<W: Write>(writer: &mut W, message: &NetMessage) -> io::Result<()> {
    let len = message.wire_len() as u32;
    let (discriminant, payload) = message.payload_view();
    // One header write (length prefix + discriminant), one payload write —
    // two syscalls per message on an unbuffered stream.
    let mut header = [0u8; 5];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4] = discriminant;
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one framed [`NetMessage`], decoding the payload as a *shared*
/// buffer: a received block's wire image and request payloads are
/// zero-copy slices of the frame allocation.
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_net_message<R: Read>(reader: &mut R) -> io::Result<NetMessage> {
    // `Bytes::from(Vec)` moves the frame allocation; the decoded block's
    // wire image and payloads are windows into it.
    let payload = Bytes::from(read_payload(reader)?);
    decode_from_bytes(&payload)
        .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
}

/// The first frame on every outbound connection: the sender's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting server.
    pub from: ServerId,
}

impl WireEncode for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
    }
}

impl WireDecode for Hello {
    fn decode(reader: &mut dagbft_codec::Reader<'_>) -> Result<Self, dagbft_codec::DecodeError> {
        Ok(Hello {
            from: ServerId::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_buffer() {
        let mut buffer = Vec::new();
        write_frame(
            &mut buffer,
            &Hello {
                from: ServerId::new(3),
            },
        )
        .unwrap();
        write_frame(&mut buffer, &42u64).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        let hello: Hello = read_frame(&mut cursor).unwrap();
        assert_eq!(hello.from, ServerId::new(3));
        let value: u64 = read_frame(&mut cursor).unwrap();
        assert_eq!(value, 42);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &7u64).unwrap();
        buffer.truncate(buffer.len() - 2);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, u64>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_payload_rejected() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&2u32.to_le_bytes());
        buffer.extend_from_slice(&[0xff, 0xff]);
        let mut cursor = io::Cursor::new(buffer);
        let err = read_frame::<_, Hello>(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    fn sample_block() -> dagbft_core::Block {
        use dagbft_core::{Label, LabeledRequest, SeqNum};
        use dagbft_crypto::KeyRegistry;
        let registry = KeyRegistry::generate(1, 5);
        let signer = registry.signer(ServerId::new(0)).unwrap();
        dagbft_core::Block::build(
            ServerId::new(0),
            SeqNum::ZERO,
            vec![],
            vec![LabeledRequest::encode(Label::new(1), &7u64)],
            &signer,
        )
    }

    #[test]
    fn net_message_fast_path_matches_generic_frame() {
        let block = sample_block();
        for message in [
            NetMessage::Block(block.clone()),
            NetMessage::FwdRequest(block.block_ref()),
        ] {
            let mut fast = Vec::new();
            write_net_message(&mut fast, &message).unwrap();
            let mut generic = Vec::new();
            write_frame(&mut generic, &message).unwrap();
            assert_eq!(fast, generic, "fast path must produce identical frames");

            let mut cursor = io::Cursor::new(fast);
            let decoded = read_net_message(&mut cursor).unwrap();
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn read_net_message_rejects_oversized_and_garbage() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let mut buffer = Vec::new();
        buffer.extend_from_slice(&1u32.to_le_bytes());
        buffer.push(9); // invalid discriminant
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_net_message(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
