//! Real TCP transport for `dagbft` servers.
//!
//! The core framework is transport-agnostic — `gossip` consumes
//! [`dagbft_core::NetMessage`]s and emits [`dagbft_core::NetCommand`]s.
//! The simulator drives it deterministically; this crate drives it over
//! actual TCP sockets with OS threads, demonstrating that the same
//! unmodified `shim(P)` runs on a real network:
//!
//! * [`frame`] — length-prefixed message framing with a hello handshake;
//! * [`TcpTransport`] — per-peer outbound queues with lazy
//!   connect/reconnect, an accept loop, and a single fan-in channel of
//!   incoming `(sender, message)` pairs. Frames lost across a reconnect
//!   are *not* retransmitted by the transport — gossip's `FWD` mechanism
//!   recovers missing blocks, exactly as under the lossy simulator;
//! * [`NodeHandle`] / [`spawn_node`] — an event-loop thread around a
//!   [`dagbft_core::Shim`], with channels for user requests and
//!   indications;
//! * [`spawn_node_with_store`] — the same loop over a durable
//!   [`dagbft_core::BlockStore`]: the shim recovers from the journal on
//!   start and journals every admitted block from then on;
//! * [`spawn_local_cluster`] — `n` nodes on localhost, for tests, examples
//!   and demos.
//!
//! With [`NodeConfig::metrics_addr`] set, every spawned node also serves
//! a live JSON metrics snapshot over HTTP (see [`dagbft_metrics`]): the
//! event loop mirrors gossip/wave/interpreter/crypto/store counters and
//! the transport's per-peer traffic into a [`dagbft_metrics::MetricsRegistry`]
//! on every tick.
//!
//! # Examples
//!
//! See `examples/tcp_cluster.rs` in the workspace root and this crate's
//! integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod node;
mod tcp;

pub use node::{spawn_local_cluster, spawn_node, spawn_node_with_store, NodeConfig, NodeHandle};
pub use tcp::{PeerTrafficSnapshot, TcpTransport};
