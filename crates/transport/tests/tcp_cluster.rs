//! End-to-end over real TCP: the same unmodified `shim(P)` that runs under
//! the deterministic simulator delivers over actual sockets.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use dagbft_core::{Label, ProtocolConfig, ShimConfig};
use dagbft_protocols::{Brb, BrbIndication, BrbRequest};
use dagbft_transport::{spawn_local_cluster, NodeConfig};

fn shim_config(n: usize) -> ShimConfig {
    ShimConfig::new(ProtocolConfig::for_n(n)).with_fwd_retry_ms(100)
}

#[test]
fn brb_broadcast_over_real_tcp() {
    let n = 4;
    let (nodes, _registry) = spawn_local_cluster::<Brb<u64>>(
        n,
        shim_config(n),
        NodeConfig {
            disseminate_every_ms: 20,
            tick_every_ms: 50,
            ..NodeConfig::default()
        },
        9,
    )
    .expect("cluster binds");

    nodes[0].request(Label::new(1), BrbRequest::Broadcast(42));

    // Collect one delivery per node, with a generous deadline.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut delivered: BTreeSet<usize> = BTreeSet::new();
    while delivered.len() < n && Instant::now() < deadline {
        for (index, node) in nodes.iter().enumerate() {
            if let Ok((label, indication)) = node.indications().try_recv() {
                assert_eq!(label, Label::new(1));
                assert_eq!(indication, BrbIndication::Deliver(42));
                delivered.insert(index);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(delivered.len(), n, "all nodes deliver over TCP");

    // Clean shutdown; inspect the final DAGs.
    for node in nodes {
        let shim = node.stop();
        assert!(shim.dag().len() >= 3, "DAG actually grew over TCP");
        assert!(shim.dag().check_invariants());
    }
}

#[test]
fn parallel_instances_over_real_tcp() {
    let n = 4;
    let instances = 5;
    let (nodes, _registry) = spawn_local_cluster::<Brb<u64>>(
        n,
        shim_config(n),
        NodeConfig {
            disseminate_every_ms: 20,
            tick_every_ms: 50,
            ..NodeConfig::default()
        },
        11,
    )
    .expect("cluster binds");

    for i in 0..instances {
        nodes[i % n].request(Label::new(i as u64), BrbRequest::Broadcast(100 + i as u64));
    }

    let expected = instances * n;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut deliveries = 0usize;
    let mut values: BTreeSet<(usize, u64, u64)> = BTreeSet::new();
    while deliveries < expected && Instant::now() < deadline {
        for (index, node) in nodes.iter().enumerate() {
            while let Ok((label, BrbIndication::Deliver(value))) = node.indications().try_recv() {
                assert_eq!(value, 100 + label.id(), "integrity per instance");
                assert!(
                    values.insert((index, label.id(), value)),
                    "no duplication at node {index}"
                );
                deliveries += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(deliveries, expected, "all instances at all nodes");
    for node in nodes {
        node.stop();
    }
}
