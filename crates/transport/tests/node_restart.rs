//! Durable node restart over real TCP: a node journals to disk, crashes
//! (process-level stop), recovers from its journal on respawn, and keeps
//! participating — catching up on what it missed through gossip's `FWD`
//! path, without ever equivocating.

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use dagbft_core::{Label, ProtocolConfig, ShimConfig};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_protocols::{Brb, BrbIndication, BrbRequest};
use dagbft_store::FileStore;
use dagbft_transport::{spawn_node, spawn_node_with_store, NodeConfig, TcpTransport};

fn shim_config(n: usize) -> ShimConfig {
    ShimConfig::new(ProtocolConfig::for_n(n)).with_fwd_retry_ms(100)
}

fn node_config() -> NodeConfig {
    NodeConfig {
        disseminate_every_ms: 20,
        tick_every_ms: 50,
        ..NodeConfig::default()
    }
}

/// Reserves `n` localhost ports by binding and releasing probe listeners.
fn reserve_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect()
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dagbft-node-restart-{tag}-{}", std::process::id()))
}

#[test]
fn durable_node_recovers_journal_and_rejoins_cluster() {
    let n = 4;
    let registry = KeyRegistry::generate(n, 23);
    let addrs = reserve_ports(n);
    let dir = unique_dir("a");
    let _ = std::fs::remove_dir_all(&dir);

    // Nodes 0..3 are plain; node 3 journals to disk.
    let mut nodes = Vec::new();
    for index in 0..n - 1 {
        let transport =
            TcpTransport::bind(ServerId::new(index as u32), addrs[index], addrs.clone()).unwrap();
        nodes.push(
            spawn_node::<Brb<u64>>(shim_config(n), node_config(), &registry, transport).unwrap(),
        );
    }
    let durable = {
        let transport = TcpTransport::bind(ServerId::new(3), addrs[3], addrs.clone()).unwrap();
        let store = Box::new(FileStore::open_dir(&dir).unwrap());
        let (handle, report) = spawn_node_with_store::<Brb<u64>>(
            shim_config(n),
            node_config(),
            &registry,
            transport,
            store,
        )
        .unwrap();
        assert_eq!(report.journal_blocks, 0, "fresh journal");
        handle
    };

    // Instance 1 delivers everywhere (including the durable node).
    nodes[0].request(Label::new(1), BrbRequest::Broadcast(10));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut delivered: BTreeSet<usize> = BTreeSet::new();
    while delivered.len() < n && Instant::now() < deadline {
        for (index, node) in nodes.iter().chain([&durable]).enumerate() {
            if let Ok((label, BrbIndication::Deliver(value))) = node.indications().try_recv() {
                assert_eq!((label, value), (Label::new(1), 10));
                delivered.insert(index);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(delivered.len(), n, "instance 1 delivers everywhere");

    // "Crash": stop the durable node. Its journal survives on disk.
    let crashed_shim = durable.stop();
    let journaled_pre_crash = crashed_shim.dag().len();
    assert!(journaled_pre_crash >= 3, "DAG grew before the crash");
    drop(crashed_shim);

    // Inject instance 2 while the node is down; the other three form a
    // quorum and deliver without it.
    nodes[1].request(Label::new(2), BrbRequest::Broadcast(20));
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut live_delivered: BTreeSet<usize> = BTreeSet::new();
    while live_delivered.len() < n - 1 && Instant::now() < deadline {
        for (index, node) in nodes.iter().enumerate() {
            if let Ok((label, BrbIndication::Deliver(value))) = node.indications().try_recv() {
                assert_eq!((label, value), (Label::new(2), 20));
                live_delivered.insert(index);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(live_delivered.len(), n - 1, "quorum delivers during outage");

    // Restart from the journal on the same port.
    let restarted = {
        let transport = TcpTransport::bind(ServerId::new(3), addrs[3], addrs.clone()).unwrap();
        let store = Box::new(FileStore::open_dir(&dir).unwrap());
        let (handle, report) = spawn_node_with_store::<Brb<u64>>(
            shim_config(n),
            node_config(),
            &registry,
            transport,
            store,
        )
        .unwrap();
        assert!(report.journal_blocks > 0, "journal replayed: {report:?}");
        handle
    };

    // The restarted node catches up on instance 2 (missed while down) via
    // gossip, and re-raises instance 1 from the replay (at-least-once).
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut caught_up = false;
    let mut replayed = false;
    while !(caught_up && replayed) && Instant::now() < deadline {
        if let Ok((label, BrbIndication::Deliver(value))) = restarted.indications().try_recv() {
            match (label, value) {
                (label, 10) if label == Label::new(1) => replayed = true,
                (label, 20) if label == Label::new(2) => caught_up = true,
                other => panic!("unexpected delivery {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(replayed, "replay re-raises the pre-crash delivery");
    assert!(
        caught_up,
        "restarted node catches up on the missed instance"
    );

    // No equivocation anywhere: the recovered builder never reused a
    // sequence number (§7's caveat).
    let restarted_shim = restarted.stop();
    assert!(restarted_shim.dag().len() >= journaled_pre_crash);
    assert!(restarted_shim
        .dag()
        .equivocations(ServerId::new(3))
        .is_empty());
    for node in nodes {
        let shim = node.stop();
        assert!(
            shim.dag().equivocations(ServerId::new(3)).is_empty(),
            "restart must not equivocate"
        );
        assert!(shim.dag().check_invariants());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
