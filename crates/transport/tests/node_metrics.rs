//! Live metrics endpoint over real TCP: a cluster of nodes each serving
//! JSON snapshots over HTTP while consensus runs, scraped mid-run by an
//! ordinary HTTP/1.0 client. Exercises the full path the operator docs
//! describe — `NodeConfig::metrics_addr` → event-loop mirror publish →
//! `dagbft_metrics::scrape`.

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use dagbft_core::{Label, ProtocolConfig, ShimConfig};
use dagbft_crypto::{KeyRegistry, ServerId};
use dagbft_metrics::{scrape, SCHEMA_VERSION};
use dagbft_protocols::{Brb, BrbIndication, BrbRequest};
use dagbft_transport::{spawn_node, NodeConfig, TcpTransport};

/// Reserves `n` localhost ports by binding and releasing probe listeners.
fn reserve_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect()
}

/// Pulls `"field":<u64>` out of a flat JSON snapshot without a parser —
/// the snapshot format is deterministic enough (no whitespace, no nested
/// objects under counters/gauges) for exact-match extraction in a test.
fn json_u64(snapshot: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = snapshot.find(&needle)? + needle.len();
    let digits: String = snapshot[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn live_nodes_serve_metrics_over_http() {
    let n = 3;
    let registry = KeyRegistry::generate(n, 71);
    let addrs = reserve_ports(n);
    let metrics_endpoint: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let node_config = NodeConfig {
        disseminate_every_ms: 20,
        tick_every_ms: 25,
        ..NodeConfig::default()
    }
    .with_metrics_addr(metrics_endpoint);
    let shim_config = ShimConfig::new(ProtocolConfig::for_n(n)).with_fwd_retry_ms(100);

    let nodes: Vec<_> = (0..n)
        .map(|index| {
            let transport =
                TcpTransport::bind(ServerId::new(index as u32), addrs[index], addrs.clone())
                    .unwrap();
            spawn_node::<Brb<u64>>(shim_config, node_config, &registry, transport).unwrap()
        })
        .collect();
    let endpoints: Vec<SocketAddr> = nodes
        .iter()
        .map(|node| node.metrics_addr().expect("metrics endpoint bound"))
        .collect();
    // Ephemeral binding resolved to distinct real ports.
    assert_eq!(
        endpoints.iter().collect::<BTreeSet<_>>().len(),
        n,
        "each node owns its own endpoint"
    );

    // Drive a few broadcasts so gossip counters move while we scrape.
    for label in 1..=5u64 {
        nodes[(label as usize) % n].request(Label::new(label), BrbRequest::Broadcast(label * 11));
    }

    // Scrape every node mid-run until all of them report validated
    // blocks and a non-trivial DAG — proving the endpoint serves *live*
    // state, not a boot-time snapshot.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut live: BTreeSet<usize> = BTreeSet::new();
    while live.len() < n && Instant::now() < deadline {
        for (index, endpoint) in endpoints.iter().enumerate() {
            let Ok(snapshot) = scrape(*endpoint) else {
                continue;
            };
            assert_eq!(
                json_u64(&snapshot, "schema_version"),
                Some(SCHEMA_VERSION),
                "snapshot carries the schema version"
            );
            let validated = json_u64(&snapshot, "gossip_blocks_validated").unwrap_or(0);
            let dag_blocks = json_u64(&snapshot, "node_dag_blocks").unwrap_or(0);
            if validated > 0 && dag_blocks > 0 {
                live.insert(index);
            }
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    assert_eq!(live.len(), n, "every node served live metrics mid-run");

    // Deliveries actually happened (the counters weren't fiction).
    let mut delivered = 0;
    let drain_deadline = Instant::now() + Duration::from_secs(20);
    while delivered == 0 && Instant::now() < drain_deadline {
        for node in &nodes {
            while let Ok((_, BrbIndication::Deliver { .. })) = node.indications().try_recv() {
                delivered += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(delivered > 0, "cluster made progress while being scraped");

    // Two scrapes of one node: monotonic counters never regress, and the
    // endpoint counts its own requests into the registry it serves.
    let first = scrape(endpoints[0]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let second = scrape(endpoints[0]).unwrap();
    for field in [
        "gossip_blocks_received",
        "gossip_blocks_validated",
        "crypto_verifies",
        "peer1_sent_msgs",
    ] {
        let before = json_u64(&first, field).unwrap();
        let after = json_u64(&second, field).unwrap();
        assert!(after >= before, "{field} regressed: {before} -> {after}");
    }
    // Traffic flowed both ways on at least one peer slot.
    assert!(
        json_u64(&second, "peer1_sent_bytes").unwrap() > 0
            || json_u64(&second, "peer2_sent_bytes").unwrap() > 0,
        "per-peer transport counters are live"
    );
    assert!(
        json_u64(&second, "metrics_http_requests").unwrap() >= 2,
        "the endpoint observes itself"
    );

    // Stopping a node tears its endpoint down with it.
    let mut nodes = nodes;
    let last = nodes.pop().unwrap();
    let endpoint = endpoints[n - 1];
    last.stop();
    assert!(
        scrape(endpoint).is_err(),
        "stopped node's endpoint is closed"
    );
    for node in nodes {
        node.stop();
    }
}

#[test]
fn metrics_endpoint_is_opt_in() {
    let n = 3;
    let registry = KeyRegistry::generate(n, 72);
    let addrs = reserve_ports(n);
    let transport = TcpTransport::bind(ServerId::new(0), addrs[0], addrs.clone()).unwrap();
    let node = spawn_node::<Brb<u64>>(
        ShimConfig::new(ProtocolConfig::for_n(n)),
        NodeConfig::default(),
        &registry,
        transport,
    )
    .unwrap();
    assert_eq!(node.metrics_addr(), None, "no endpoint unless asked");
    node.stop();
}
