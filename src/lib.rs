//! # dagbft — Embedding a Deterministic BFT Protocol in a Block DAG
//!
//! A Rust reproduction of Schett & Danezis, PODC 2021
//! (arXiv:2102.09594): servers jointly build a **block DAG** — blocks
//! cryptographically referencing previously received blocks — and each
//! server *locally interprets* the DAG as the execution of any
//! deterministic BFT protocol `P`, preserving `P`'s interface, safety and
//! liveness (Theorem 5.1). Protocol messages are never sent: they are
//! recomputed from `P`'s determinism (message compression, §4), one block
//! signature covers arbitrarily many messages (signature batching), and
//! any number of protocol instances ride the same blocks in parallel.
//!
//! This crate is the facade over the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`dag`] | the framework: blocks, DAG, `gossip`, `interpret`, `shim` |
//! | [`protocols`] | deterministic `P`s: BRB, consistent broadcast, PBFT-lite SMR, payments |
//! | [`sim`] | discrete-event network, byzantine adversaries, metrics |
//! | [`store`] | durable block journal: checksummed records, crash recovery, snapshots |
//! | [`metrics`] | live observability: metrics registry, JSON snapshots, HTTP endpoint |
//! | [`baseline`] | the direct point-to-point comparator deployment |
//! | [`transport`] | real TCP transport (threads, framing) for live clusters |
//! | [`crypto`] | SHA-256, HMAC signatures, identities |
//! | [`codec`] | the deterministic wire format |
//!
//! # Quickstart
//!
//! Broadcast a value to four servers over a block DAG:
//!
//! ```
//! use dagbft::prelude::*;
//!
//! let config = SimConfig::new(4).with_stop_after_deliveries(4);
//! let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
//! sim.inject(Injection {
//!     at: 0,
//!     server: 0,
//!     label: Label::new(1),
//!     request: BrbRequest::Broadcast(42),
//! });
//! let outcome = sim.run();
//! assert_eq!(outcome.deliveries.len(), 4);
//! // Only blocks and FWDs ever crossed the wire:
//! assert_eq!(outcome.net.messages_sent,
//!            outcome.net.blocks_sent + outcome.net.fwd_sent);
//! ```
//!
//! See `examples/` for runnable scenarios (quickstart, the paper's
//! figures, payments, consensus) and `EXPERIMENTS.md` for the full
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dagbft_baseline as baseline;
pub use dagbft_codec as codec;
pub use dagbft_core as dag;
pub use dagbft_crypto as crypto;
pub use dagbft_metrics as metrics;
pub use dagbft_protocols as protocols;
pub use dagbft_sim as sim;
pub use dagbft_store as store;
pub use dagbft_transport as transport;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use dagbft_baseline::{BaselineConfig, BaselineSimulation, DirectInjection};
    pub use dagbft_core::{
        AdmissionMode, AdmitVerdict, Block, BlockDag, BlockRef, BlockStore, DefenseConfig,
        DefenseEvent, DefenseStats, DeterministicProtocol, Envelope, Gossip, GossipConfig,
        GossipStats, Indication, InterpretStats, Interpreter, InterpreterFootprint, Label,
        LabeledRequest, MemoryStore, NetCommand, NetMessage, Offense, Outbox, PeerDefense,
        PeerScoreSnapshot, ProtocolConfig, RecoverError, RecoveryReport, ReferenceInterpreter,
        SeqNum, Shim, ShimConfig, SnapshotProtocol, StoreContents, StoreError, TimeMs,
    };
    pub use dagbft_crypto::{KeyRegistry, SchemeKind, ServerId};
    pub use dagbft_protocols::{
        AccountId, Bcb, BcbIndication, BcbMessage, BcbRequest, Brb, BrbIndication, BrbMessage,
        BrbRequest, Ledger, Smr, SmrIndication, SmrMessage, SmrRequest, Transfer,
    };
    pub use dagbft_sim::{
        Delivery, Injection, Latency, NetMetrics, NetworkModel, Partition, Role, SimConfig,
        SimOutcome, Simulation,
    };
    pub use dagbft_store::{FileStore, JournalStore, MemStore};
}
