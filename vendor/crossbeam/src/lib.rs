//! Offline shim for the `crossbeam` crate: MPMC channels with a polling
//! `select!`, and scoped threads over `std::thread::scope`. Covers
//! exactly the surface this workspace uses; see `vendor/README.md`.

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;
