//! Scoped threads with the crossbeam API shape, backed by
//! `std::thread::scope`.

use std::any::Any;

/// A scope handle; spawn closures receive a reference to it (crossbeam
/// convention), allowing nested spawns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// A handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` if it
    /// panicked).
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to `'env`; the closure receives the scope
    /// for nested spawning.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// spawned threads are joined before this returns.
///
/// # Errors
///
/// Unlike `std::thread::scope`, returns `Err` in the crossbeam style
/// only if `f` itself cannot complete; child panics surface through
/// each handle's `join` (or propagate if unjoined).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(scope.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(result, 42);
    }
}
