//! Unbounded MPMC channels with `try_recv` / `recv_timeout` and a
//! polling [`select!`] macro.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use crate::select;

struct Shared<T> {
    queue: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// The sending half of a channel. Clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; the
/// unsent value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Queues `value`; fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    ///
    /// # Errors
    ///
    /// [`RecvError`] when the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.items.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.ready.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        if let Some(value) = state.items.pop_front() {
            Ok(value)
        } else if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline,
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and
    /// all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(value) = state.items.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .shared
                .ready
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = next;
            if timed_out.timed_out() && state.items.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .queue
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .queue
            .lock()
            .expect("channel poisoned")
            .receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Waits on several receivers at once, with a `default(duration)` arm.
///
/// Polling implementation (1 ms tick): each arm's channel is tried in
/// order; a ready or disconnected channel fires its arm with a
/// `Result<T, RecvError>`; if none fires before the default arm's
/// duration elapses, the default arm runs.
#[macro_export]
macro_rules! select {
    (
        $( recv($rx:expr) -> $res:pat => $body:block )+
        default($timeout:expr) => $default_body:block
    ) => {{
        let __select_deadline = ::std::time::Instant::now() + $timeout;
        loop {
            $(
                match $rx.try_recv() {
                    Err($crate::channel::TryRecvError::Empty) => {}
                    other => {
                        let $res = other.map_err(|_| $crate::channel::RecvError);
                        $body
                        #[allow(unreachable_code)]
                        break;
                    }
                }
            )+
            if ::std::time::Instant::now() >= __select_deadline {
                $default_body
                #[allow(unreachable_code)]
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_millis(1));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn select_fires_ready_arm_and_default() {
        let (tx, rx) = unbounded();
        let (_tx2, rx2) = unbounded::<u8>();
        tx.send(7u32).unwrap();
        let mut got = None;
        select! {
            recv(rx) -> msg => { got = msg.ok(); }
            recv(rx2) -> _ => {}
            default(Duration::from_millis(5)) => {}
        };
        assert_eq!(got, Some(7));

        let mut hit_default = false;
        select! {
            recv(rx) -> _msg => {}
            recv(rx2) -> _ => {}
            default(Duration::from_millis(5)) => { hit_default = true; }
        };
        assert!(hit_default);
    }
}
