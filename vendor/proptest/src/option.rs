//! `option::of` — wraps a strategy's values in `Option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy three times out of four, else
/// `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.75) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn generates_both_variants() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = super::of(0u8..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match crate::strategy::Strategy::new_value(&s, &mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }
}
