//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.in_range(self.min as u64, self.max as u64) as usize
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the size
/// window is an upper bound.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len)
            .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
            .collect()
    }
}

/// Strategy for `BTreeSet<T>`; duplicates collapse, so the size window
/// is an upper bound.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_length_window() {
        let mut rng = TestRng::deterministic();
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()), "{}", v.len());
        }
        let exact = vec(any::<u8>(), 3usize..=3);
        assert_eq!(exact.new_value(&mut rng).len(), 3);
    }

    #[test]
    fn maps_and_sets_respect_upper_bound() {
        let mut rng = TestRng::deterministic();
        let m = btree_map(any::<u8>(), any::<u32>(), 0..10);
        let s = btree_set(any::<u16>(), 0..10);
        for _ in 0..100 {
            assert!(m.new_value(&mut rng).len() < 10);
            assert!(s.new_value(&mut rng).len() < 10);
        }
    }
}
