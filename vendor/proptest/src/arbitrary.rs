//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: the full domain, uniformly.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Mostly ASCII; occasionally any valid scalar value.
        if rng.chance(0.9) {
            (rng.in_range(0x20, 0x7e) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}

impl Arbitrary for String {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        let len = rng.below(33);
        (0..len).map(|_| char::arbitrary_value(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        if rng.chance(0.5) {
            Some(T::arbitrary_value(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::deterministic();
        let strategy = any::<u64>();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(strategy.new_value(&mut rng));
        }
        assert!(seen.len() > 32, "poor dispersion: {}", seen.len());
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::deterministic();
        let strategy = any::<bool>();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(strategy.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn strings_are_valid_utf8_and_bounded() {
        let mut rng = TestRng::deterministic();
        for _ in 0..100 {
            let s = String::arbitrary_value(&mut rng);
            assert!(s.chars().count() <= 32);
        }
    }
}
