//! Offline shim for the `proptest` crate: strategy-driven randomized
//! property testing without shrinking. On failure the case number and
//! the generated input are printed. Covers exactly the surface this
//! workspace uses; see `vendor/README.md`.
//!
//! Case counts: 256 by default, `ProptestConfig::with_cases` per suite,
//! and the `PROPTEST_CASES` environment variable overriding everything.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property; failure reports the generated
/// input alongside the panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies: `name in strategy` or `name: Type` (shorthand for
/// `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Entry with a config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@top ($config) $($rest)*);
    };
    // Munch one test fn at a time.
    (@top ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@parse ($config) ($(#[$meta])*) $name [] [] ($($args)*) $body);
        $crate::proptest!(@top ($config) $($rest)*);
    };
    (@top ($config:expr)) => {};
    // Argument munchers: `name in strategy` form.
    (@parse ($config:expr) ($(#[$meta:meta])*) $name:ident
        [$($pats:pat,)*] [$($strats:expr,)*]
        ($arg:ident in $strat:expr, $($rest:tt)*) $body:block
    ) => {
        $crate::proptest!(@parse ($config) ($(#[$meta])*) $name
            [$($pats,)* $arg,] [$($strats,)* $strat,] ($($rest)*) $body);
    };
    (@parse ($config:expr) ($(#[$meta:meta])*) $name:ident
        [$($pats:pat,)*] [$($strats:expr,)*]
        ($arg:ident in $strat:expr) $body:block
    ) => {
        $crate::proptest!(@parse ($config) ($(#[$meta])*) $name
            [$($pats,)* $arg,] [$($strats,)* $strat,] () $body);
    };
    // Argument munchers: `name: Type` shorthand.
    (@parse ($config:expr) ($(#[$meta:meta])*) $name:ident
        [$($pats:pat,)*] [$($strats:expr,)*]
        ($arg:ident : $ty:ty, $($rest:tt)*) $body:block
    ) => {
        $crate::proptest!(@parse ($config) ($(#[$meta])*) $name
            [$($pats,)* $arg,] [$($strats,)* $crate::arbitrary::any::<$ty>(),]
            ($($rest)*) $body);
    };
    (@parse ($config:expr) ($(#[$meta:meta])*) $name:ident
        [$($pats:pat,)*] [$($strats:expr,)*]
        ($arg:ident : $ty:ty) $body:block
    ) => {
        $crate::proptest!(@parse ($config) ($(#[$meta])*) $name
            [$($pats,)* $arg,] [$($strats,)* $crate::arbitrary::any::<$ty>(),]
            () $body);
    };
    // All arguments consumed: emit the test.
    (@parse ($config:expr) ($(#[$meta:meta])*) $name:ident
        [$($pats:pat,)*] [$($strats:expr,)*] () $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strats,)*);
            $crate::test_runner::run_cases(&config, &strategy, |($($pats,)*)| $body);
        }
    };
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@top ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
