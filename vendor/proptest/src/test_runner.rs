//! Case configuration, the deterministic test RNG, and the case loop.

use std::fmt::Debug;

use crate::strategy::Strategy;

/// Per-suite configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (still overridden by the
    /// `PROPTEST_CASES` environment variable).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        env_cases().unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn env_cases() -> Option<u32> {
    let raw = std::env::var("PROPTEST_CASES").ok()?;
    match raw.trim().parse() {
        Ok(cases) => Some(cases),
        Err(_) => {
            eprintln!("proptest: ignoring unparsable PROPTEST_CASES={raw:?}");
            None
        }
    }
}

/// Deterministic RNG driving value generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A fixed-seed RNG: every run generates the same case sequence.
    pub fn deterministic() -> Self {
        TestRng::from_seed(0x5eed_cafe_f00d_d00d)
    }

    /// Expands `seed` into the full state with SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next().max(1)],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `lo..=hi`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128 * span) >> 64) as u64
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

/// Prints the failing input when the case body panics (runs during
/// unwind, so it needs no `catch_unwind`).
struct FailureReport {
    case: u32,
    input: Option<String>,
}

impl Drop for FailureReport {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(input) = &self.input {
                eprintln!("proptest: case #{} failed with input: {}", self.case, input);
                eprintln!("proptest: this shim does not shrink; the input above is raw");
            }
        }
    }
}

/// Runs `body` against `config.resolved_cases()` generated inputs.
pub fn run_cases<S, F>(config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: Debug,
    F: FnMut(S::Value),
{
    let cases = config.resolved_cases();
    let mut rng = TestRng::deterministic();
    for case in 0..cases {
        let value = strategy.new_value(&mut rng);
        let mut report = FailureReport {
            case,
            input: Some(format!("{value:?}")),
        };
        body(value);
        report.input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            let v = rng.in_range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn with_cases_and_default() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
