//! The [`Strategy`] trait, combinators, and strategy implementations
//! for ranges, tuples, and regex-literal strings.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type. No shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `func`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, func }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, func: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, func }
    }

    /// Retries generation until `predicate` accepts a value (up to an
    /// internal attempt cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            predicate,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.func)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.new_value(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                rng.in_range(self.start as u64, self.end as u64 - 1) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range(*self.start() as u64, *self.end() as u64) as $ty
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// String literals are regex strategies. This shim supports the subset
/// the workspace uses: `".*"` (any string, length 0..=32) and
/// `".{m,n}"` (any string, length `m..=n`); anything else panics.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_quantifier(self).unwrap_or_else(|| {
            panic!(
                "proptest shim: unsupported regex strategy {self:?} \
                 (supported: \".*\" and \".{{m,n}}\")"
            )
        });
        let len = rng.in_range(min, max) as usize;
        random_string(rng, len)
    }
}

fn parse_dot_quantifier(pattern: &str) -> Option<(u64, u64)> {
    let rest = pattern.strip_prefix('.')?;
    if rest == "*" {
        return Some((0, 32));
    }
    if rest == "+" {
        return Some((1, 32));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Mostly printable ASCII with occasional multi-byte characters, so
/// codecs see both single- and multi-byte UTF-8.
fn random_string(rng: &mut TestRng, len: usize) -> String {
    const EXOTIC: [char; 8] = ['é', 'ß', 'λ', '≤', '中', '🦀', '\u{7f}', '\t'];
    let mut out = String::with_capacity(len);
    for _ in 0..len {
        if rng.chance(0.15) {
            out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
        } else {
            out.push((rng.in_range(0x20, 0x7e) as u8) as char);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic()
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (3u64..10).new_value(&mut rng);
            assert!((3..10).contains(&v));
            let w = (5usize..=5).new_value(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let even = (0u32..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(even.new_value(&mut rng) % 2, 0);
        }
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n));
        for _ in 0..100 {
            let v = nested.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = rng();
        let s = Union::new(vec![(0u8..1).boxed(), (10u8..11).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.new_value(&mut rng));
        }
        assert_eq!(seen, [0u8, 10].into_iter().collect());
    }

    #[test]
    fn regex_subset_lengths() {
        let mut rng = rng();
        for _ in 0..100 {
            let any = ".*".new_value(&mut rng);
            assert!(any.chars().count() <= 32);
            let bounded = ".{2,5}".new_value(&mut rng);
            let n = bounded.chars().count();
            assert!((2..=5).contains(&n), "{bounded:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_regex_panics() {
        "[a-z]+".new_value(&mut rng());
    }

    #[test]
    fn filter_retries() {
        let mut rng = rng();
        let odd = (0u32..100).prop_filter("odd", |v| v % 2 == 1);
        for _ in 0..100 {
            assert_eq!(odd.new_value(&mut rng) % 2, 1);
        }
    }
}
