//! Offline shim for the `rand` crate.
//!
//! Deterministic given a seed (which is all this workspace relies on),
//! but the stream is *not* bit-identical to upstream `rand`'s `StdRng`.
//! Covers: `rngs::StdRng`, [`Rng`] (`gen`, `gen_range`, `gen_bool`,
//! `fill`), [`SeedableRng`], and `seq::SliceRandom::shuffle`.

#![forbid(unsafe_code)]

/// A source of random `u32`/`u64` values and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a `u64` with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Values producible from raw random bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for ::std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + mul_shift(rng.next_u64(), span) as $ty
            }
        }

        impl SampleRange<$ty> for ::std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                start + mul_shift(rng.next_u64(), span) as $ty
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Maps a uniform `u64` onto `0..span` without modulo bias
/// (widening-multiply-then-shift).
fn mul_shift(raw: u64, span: u128) -> u128 {
    (raw as u128 * span) >> 64
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded RNG: xoshiro256++.
    ///
    /// Deterministic per seed; not stream-compatible with upstream
    /// `rand`'s ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// Shuffling and sampling for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::mul_shift(rng.next_u64(), (i + 1) as u128)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::mul_shift(rng.next_u64(), self.len() as u128) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w: usize = rng.gen_range(0usize..5);
            assert!(w < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation_and_seeded() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
