//! Offline shim for the `criterion` crate: real timing loops, mean
//! iteration times on stdout, no statistical analysis or reports.
//! Covers exactly the surface this workspace uses; see
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value or the work producing it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` at parameter value `parameter`.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark distinguished only by its parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(function), Some(parameter)) => write!(f, "{function}/{parameter}"),
            (Some(function), None) => write!(f, "{function}"),
            (None, Some(parameter)) => write!(f, "{parameter}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Throughput annotation for a benchmark (recorded, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (advisory here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per setup.
    SmallInput,
    /// Large inputs: fewer per setup.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples;
        self
    }

    /// Sets the target measurement budget (advisory in this shim).
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iterations: samples.max(1) as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
    match tp {
        Some(Throughput::Bytes(bytes)) => {
            eprintln!("bench {label}: {per_iter} ns/iter ({bytes} bytes/iter)");
        }
        Some(Throughput::Elements(elements)) => {
            eprintln!("bench {label}: {per_iter} ns/iter ({elements} elements/iter)");
        }
        None => eprintln!("bench {label}: {per_iter} ns/iter"),
    }
}

/// Declares a group of benchmark functions, with or without a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench harness `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(3));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_every_shape() {
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
    }

    criterion_group!(benches, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = sample_bench,
    }

    #[test]
    fn group_macros_compile_and_run() {
        benches();
        configured();
    }
}
