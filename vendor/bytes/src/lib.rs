//! Offline shim for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. Covers exactly the surface this workspace uses; see
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
///
/// Backed by `Arc<Vec<u8>>` plus an `(offset, len)` window: `clone` is a
/// reference-count bump, [`Bytes::slice`] produces a sub-view sharing the
/// same allocation, and `From<Vec<u8>>` *moves* the vector in — never a
/// copy of the payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies a static byte slice into a buffer.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` for the given range **without copying**:
    /// the returned `Bytes` shares the backing allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice [{start}, {end}) out of bounds of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Returns `true` if `self` and `other` are views into the same backing
    /// allocation (regardless of window) — the observable "zero-copy" fact.
    pub fn shares_allocation_with(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of live handles (views) sharing this buffer's backing
    /// allocation, including `self`.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Attempts to take the backing allocation back: succeeds iff `self`
    /// is the only live handle, returning the *full* original vector
    /// (window offsets are discarded — this is a recycling primitive, not
    /// an accessor). On failure the handle is returned unchanged.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, offset, len } = self;
        Arc::try_unwrap(data).map_err(|data| Bytes { data, offset, len })
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        // A move, not a copy: the vector becomes the backing allocation.
        Bytes {
            len: data.len(),
            data: Arc::new(data),
            offset: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// Equality, ordering, and hashing are over the *visible window*, not the
// backing allocation, so a zero-copy slice compares equal to a fresh copy.
impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
        assert_eq!(a.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(a.shares_allocation_with(&b));
        assert_eq!(format!("{a:?}"), "b\"\\x01\\x02\\x03\"");
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(b"hello world".to_vec());
        let hello = a.slice(0..5);
        let world = a.slice(6..);
        assert_eq!(hello.as_ref(), b"hello");
        assert_eq!(world.as_ref(), b"world");
        assert!(hello.shares_allocation_with(&a));
        assert!(world.shares_allocation_with(&a));
        // A slice of a slice still shares the original allocation.
        let ell = hello.slice(1..4);
        assert_eq!(ell.as_ref(), b"ell");
        assert!(ell.shares_allocation_with(&a));
    }

    #[test]
    fn slice_compares_equal_to_copy() {
        let a = Bytes::from(b"abcdef".to_vec());
        let sliced = a.slice(2..5);
        let copied = Bytes::copy_from_slice(b"cde");
        assert_eq!(sliced, copied);
        assert!(!sliced.shares_allocation_with(&copied));
        use std::collections::hash_map::DefaultHasher;
        let hash = |b: &Bytes| {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&sliced), hash(&copied));
        assert_eq!(sliced.cmp(&copied), std::cmp::Ordering::Equal);
    }

    #[test]
    fn full_and_empty_slices() {
        let a = Bytes::from(b"xy".to_vec());
        assert_eq!(a.slice(..), a);
        assert!(a.slice(1..1).is_empty());
        assert_eq!(a.slice(..=0).as_ref(), b"x");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from(b"xy".to_vec());
        let _ = a.slice(1..3);
    }

    #[test]
    fn reclaim_succeeds_only_for_sole_owner() {
        let a = Bytes::from(b"pooled frame".to_vec());
        assert_eq!(a.ref_count(), 1);
        let window = a.slice(7..);
        assert_eq!(a.ref_count(), 2);
        // A shared allocation cannot be reclaimed; the handle survives.
        let a = a.try_reclaim().expect_err("still shared");
        assert_eq!(a.as_ref(), b"pooled frame");
        drop(window);
        // Sole owner: the full backing vector comes back, even from a
        // windowed handle.
        let sliced = a.slice(0..6);
        drop(a);
        assert_eq!(sliced.ref_count(), 1);
        let vec = sliced.try_reclaim().expect("sole owner");
        assert_eq!(vec, b"pooled frame".to_vec());
    }
}
