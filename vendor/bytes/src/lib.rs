//! Offline shim for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. Covers exactly the surface this workspace uses; see
//! `vendor/README.md`.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable slice of bytes.
///
/// Backed by `Arc<[u8]>`: `clone` is a reference-count bump, never a
/// copy of the payload.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wraps a static byte slice (no allocation beyond the `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            if byte.is_ascii_graphic() || byte == b' ' {
                write!(f, "{}", byte as char)?;
            } else {
                write!(f, "\\x{byte:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
        assert_eq!(a.to_vec(), b"hello".to_vec());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"\\x01\\x02\\x03\"");
    }
}
