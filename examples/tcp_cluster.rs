//! A live 4-server cluster over real TCP sockets.
//!
//! The same unmodified `shim(P)` that the deterministic simulator drives
//! runs here over localhost TCP: threads, length-prefixed frames, lazy
//! reconnects — with gossip's `FWD` mechanism covering any frames lost
//! across reconnections.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use dagbft::prelude::*;
use dagbft::transport::{spawn_local_cluster, NodeConfig};

fn main() {
    let n = 4;
    let config = ShimConfig::new(ProtocolConfig::for_n(n));
    let pacing = NodeConfig {
        disseminate_every_ms: 25,
        tick_every_ms: 50,
        ..NodeConfig::default()
    };
    let (nodes, _registry) =
        spawn_local_cluster::<Brb<u64>>(n, config, pacing, 2026).expect("bind localhost cluster");
    println!("=== {n}-server BRB cluster over real TCP (localhost) ===\n");

    let started = Instant::now();
    nodes[0].request(Label::new(1), BrbRequest::Broadcast(42));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut delivered: BTreeSet<usize> = BTreeSet::new();
    while delivered.len() < n && Instant::now() < deadline {
        for (index, node) in nodes.iter().enumerate() {
            if let Ok((label, BrbIndication::Deliver(value))) = node.indications().try_recv() {
                println!(
                    "t={:>4}ms  {} delivered {} on {}",
                    started.elapsed().as_millis(),
                    node.me(),
                    value,
                    label
                );
                delivered.insert(index);
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    assert_eq!(delivered.len(), n, "all nodes must deliver");
    println!("\n--- final DAGs after clean shutdown ---");
    for node in nodes {
        let me = node.me();
        let shim = node.stop();
        println!(
            "{}: {} blocks, {} edges, interpreter materialized {} messages",
            me,
            shim.dag().len(),
            shim.dag().edge_count(),
            shim.interpreter().stats().messages_materialized
        );
        assert!(shim.dag().check_invariants());
    }
    println!("\nOK: BRB delivered on a real network, wall-clock end to end.");
}
