//! Experiment E5 preview: message compression, DAG vs direct baseline.
//!
//! Runs the same BRB workload (1 broadcast, all servers deliver) on the
//! block DAG embedding and on the traditional direct point-to-point
//! deployment, sweeping the server count, and prints the wire and
//! signature costs side by side. The full parameter sweeps live in the
//! bench crate (`cargo bench`, `report_*` binaries).
//!
//! Run with: `cargo run --example compression_report`

use dagbft::prelude::*;

struct Row {
    n: usize,
    dag_msgs: u64,
    dag_bytes: u64,
    dag_sigs: u64,
    direct_msgs: u64,
    direct_bytes: u64,
    direct_sigs: u64,
}

fn run_dag(n: usize) -> (u64, u64, u64) {
    let config = SimConfig::new(n)
        .with_max_time(30_000)
        .with_stop_after_deliveries(n);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(42),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), n);
    (
        outcome.net.messages_sent,
        outcome.net.bytes_sent,
        outcome.signatures,
    )
}

fn run_direct(n: usize) -> (u64, u64, u64) {
    let config = BaselineConfig::new(n)
        .with_max_time(30_000)
        .with_stop_after_deliveries(n);
    let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
    sim.inject(DirectInjection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(42),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), n);
    (
        outcome.net.messages_sent,
        outcome.net.bytes_sent,
        outcome.signatures,
    )
}

fn main() {
    println!("=== E5/E6: wire + signature cost, one BRB broadcast to delivery ===\n");
    println!(
        "{:>3} | {:>9} {:>10} {:>6} | {:>9} {:>10} {:>6} | {:>8}",
        "n", "dag msgs", "dag bytes", "sigs", "dir msgs", "dir bytes", "sigs", "msg ratio"
    );
    println!("{}", "-".repeat(80));

    for n in [4, 7, 10, 13, 16] {
        let (dag_msgs, dag_bytes, dag_sigs) = run_dag(n);
        let (direct_msgs, direct_bytes, direct_sigs) = run_direct(n);
        let row = Row {
            n,
            dag_msgs,
            dag_bytes,
            dag_sigs,
            direct_msgs,
            direct_bytes,
            direct_sigs,
        };
        println!(
            "{:>3} | {:>9} {:>10} {:>6} | {:>9} {:>10} {:>6} | {:>8.2}",
            row.n,
            row.dag_msgs,
            row.dag_bytes,
            row.dag_sigs,
            row.direct_msgs,
            row.direct_bytes,
            row.direct_sigs,
            row.direct_msgs as f64 / row.dag_msgs as f64,
        );
    }

    println!(
        "\nNote: a single broadcast is the *worst case* for the DAG (blocks are\n\
         nearly empty). The advantage compounds with parallel instances —\n\
         run `cargo run --release -p dagbft-bench --bin report_parallel`."
    );
}
