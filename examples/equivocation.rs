//! Figure 3: an equivocating server — and why BRB does not care.
//!
//! Server 0 is byzantine: at sequence number 0 it builds *two* valid blocks
//! with the same `(n, k)` and sends one version to each half of the
//! network (the paper's Figure 3). The interpreted state for server 0
//! splits, but the embedded BRB protocol tolerates it: all correct servers
//! still agree on the delivered value (consistency), and the equivocation
//! is permanently visible — both conflicting blocks sit in the joint DAG,
//! signed by the equivocator.
//!
//! Run with: `cargo run --example equivocation`

use dagbft::prelude::*;

fn main() {
    let config = SimConfig::new(4)
        .with_max_time(15_000)
        .with_role(0, Role::Equivocate { at_seq: 0 })
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);

    // A *correct* server broadcasts; the equivocator meddles with the DAG.
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1),
        request: BrbRequest::Broadcast(99),
    });

    let outcome = sim.run();

    println!("=== Figure 3: equivocation in the block DAG ===\n");
    for delivery in &outcome.deliveries {
        let BrbIndication::Deliver(value) = delivery.indication;
        println!(
            "t={:>5}ms  {} delivered {} on {}",
            delivery.at, delivery.server, value, delivery.label
        );
    }

    let values: std::collections::BTreeSet<u64> = outcome
        .deliveries
        .iter()
        .map(|d| {
            let BrbIndication::Deliver(v) = d.indication;
            v
        })
        .collect();
    assert!(values.len() <= 1, "BRB consistency preserved");

    println!("\n--- equivocation evidence in correct servers' DAGs ---");
    for index in outcome.correct_servers() {
        let dag = outcome.shim(index).dag();
        for (seq, blocks) in dag.equivocations(ServerId::new(0)) {
            println!(
                "server s{index}: s0 equivocated at {} with {} conflicting blocks: {:?}",
                seq,
                blocks.len(),
                blocks
            );
        }
    }

    let detected = outcome.correct_servers().iter().any(|i| {
        !outcome
            .shim(*i)
            .dag()
            .equivocations(ServerId::new(0))
            .is_empty()
    });
    println!(
        "\nOK: consistency held ({} distinct value(s) delivered), equivocation detected: {}.",
        values.len(),
        detected
    );
}
