//! De-randomization (§7): a leader lottery from coins inscribed in blocks.
//!
//! Each server draws a coin from its local entropy — outside the
//! deterministic protocol — and contributes it via a request, so the coin
//! travels inside the server's next block. Interpreting the joint DAG,
//! every server deterministically mixes all `n` coins and agrees on the
//! same lottery winner, with zero extra network traffic beyond the blocks.
//!
//! Run with: `cargo run --release --example beacon_lottery`

use dagbft::prelude::*;
use dagbft::protocols::beacon::{Beacon, BeaconRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 4;
    let rounds = 3u64; // several independent lottery rounds, one label each
    let config = SimConfig::new(n)
        .with_max_time(30_000)
        .with_stop_after_deliveries(rounds as usize * n);
    let mut sim: Simulation<Beacon> = Simulation::new(config);

    // Local entropy per server (a seeded RNG stands in for /dev/urandom —
    // the protocol itself never sees the RNG, only the drawn values).
    let mut entropy = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..rounds {
        for server in 0..n {
            sim.inject(Injection {
                at: round * 500 + server as u64 * 3,
                server,
                label: Label::new(round),
                request: BeaconRequest::Contribute(entropy.gen()),
            });
        }
    }

    let outcome = sim.run();
    println!("=== §7 de-randomization: leader lottery over the block DAG ===\n");
    for round in 0..rounds {
        let label = Label::new(round);
        let deliveries = outcome.deliveries_for(label);
        assert_eq!(deliveries.len(), n, "round {round} incomplete");
        let first = &deliveries[0].indication;
        for delivery in &deliveries {
            assert_eq!(
                &delivery.indication, first,
                "servers disagreed on round {round}"
            );
        }
        println!(
            "round {round}: beacon value {:#018x} → winner {}   (agreed by all {n} servers)",
            first.value, first.winner
        );
    }
    println!(
        "\nwire traffic: {} messages ({} blocks, {} FWD) — the coins rode the blocks.",
        outcome.net.messages_sent, outcome.net.blocks_sent, outcome.net.fwd_sent
    );
    println!("OK: every round produced one agreed winner.");
}
