//! A FastPay-style payment system riding the block DAG.
//!
//! The paper's introduction motivates block DAGs with payment systems
//! built on byzantine reliable broadcast [2, 13]: asset transfers need no
//! consensus, only reliably broadcast, per-account-sequenced transfer
//! orders. Here every transfer runs as its own BRB instance — one fresh
//! label per `(account, seq)` — and all of them ride the *same* blocks:
//! the "parallel instances for free" claim, applied.
//!
//! Run with: `cargo run --example payments`

use dagbft::prelude::*;
use dagbft::protocols::Transfer;

fn main() {
    let n = 4;

    // The transfer workload: a small payment graph with chained funds
    // (acct2 spends money that arrives from acct1, etc.).
    let transfers = [
        Transfer {
            from: AccountId(1),
            to: AccountId(2),
            amount: 50,
            seq: 0,
        },
        Transfer {
            from: AccountId(1),
            to: AccountId(3),
            amount: 20,
            seq: 1,
        },
        Transfer {
            from: AccountId(2),
            to: AccountId(3),
            amount: 30,
            seq: 0,
        },
        Transfer {
            from: AccountId(3),
            to: AccountId(4),
            amount: 45,
            seq: 0,
        },
        Transfer {
            from: AccountId(4),
            to: AccountId(1),
            amount: 5,
            seq: 0,
        },
    ];
    let expected = transfers.len() * n; // every server delivers every transfer

    let config = SimConfig::new(n)
        .with_max_time(30_000)
        .with_disseminate_every(20)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Brb<Transfer>> = Simulation::new(config);

    // Each client submits its transfer through a (different) server.
    for (index, transfer) in transfers.iter().enumerate() {
        sim.inject(Injection {
            at: 10 * index as u64,
            server: index % n,
            label: transfer.label(),
            request: BrbRequest::Broadcast(transfer.clone()),
        });
    }

    let outcome = sim.run();

    println!("=== FastPay-style payments over the block DAG ===\n");
    println!(
        "{} transfers broadcast as {} parallel BRB instances; {} deliveries observed (expected {}).\n",
        transfers.len(),
        transfers.len(),
        outcome.deliveries.len(),
        expected
    );

    // Every server independently settles its delivered transfers.
    let initial = [
        (AccountId(1), 100u64),
        (AccountId(2), 10),
        (AccountId(3), 0),
        (AccountId(4), 0),
    ];
    let mut ledgers: Vec<Ledger> = (0..n).map(|_| Ledger::new(initial)).collect();
    for (server, ledger) in ledgers.iter_mut().enumerate() {
        let delivered = outcome
            .deliveries
            .iter()
            .filter(|d| d.server.index() == server)
            .map(|d| {
                let BrbIndication::Deliver(t) = &d.indication;
                t.clone()
            });
        let leftover = ledger.settle(delivered);
        assert!(
            leftover.is_empty(),
            "server {server} could not settle: {leftover:?}"
        );
    }

    println!("--- settled balances (per server replica) ---");
    for account in 1..=4u32 {
        let balances: Vec<u64> = ledgers
            .iter()
            .map(|l| l.balance(AccountId(account)))
            .collect();
        println!("  {}: {:?}", AccountId(account), balances);
        assert!(
            balances.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged on {account}"
        );
    }

    let reference = &ledgers[0];
    assert_eq!(reference.balance(AccountId(1)), 35);
    assert_eq!(reference.balance(AccountId(2)), 30);
    assert_eq!(reference.balance(AccountId(3)), 5);
    assert_eq!(reference.balance(AccountId(4)), 40);
    assert_eq!(reference.total_supply(), 110, "supply conserved");

    println!("\n--- cost profile ---");
    println!(
        "wire messages : {:>6} (blocks: {}, FWD: {})",
        outcome.net.messages_sent, outcome.net.blocks_sent, outcome.net.fwd_sent
    );
    println!("wire bytes    : {:>6}", outcome.net.bytes_sent);
    println!("signatures    : {:>6}", outcome.signatures);
    println!("\nOK: all replicas settled to identical balances; supply conserved.");
}
