//! PBFT-lite consensus embedded in the block DAG — the Blockmania pattern.
//!
//! §6 of the paper: "Blockmania encodes a simplified version of PBFT" in a
//! block DAG. Here a deterministic three-phase-commit SMR runs as the
//! embedded protocol `P`, with a different leader per instance label
//! (`leader = ℓ mod n`), so four labels give a rotating-leader system —
//! all riding the same blocks.
//!
//! Run with: `cargo run --example consensus_smr`

use dagbft::prelude::*;

fn main() {
    let n = 4;
    let commands: Vec<(u64, u64)> = vec![
        // (label → leader ℓ mod n, proposed value)
        (0, 1000),
        (1, 1001),
        (2, 1002),
        (3, 1003),
        (0, 1004),
        (1, 1005),
    ];
    let expected = commands.len() * n;

    let config = SimConfig::new(n)
        .with_max_time(30_000)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Smr<u64>> = Simulation::new(config);

    for (index, (label, value)) in commands.iter().enumerate() {
        sim.inject(Injection {
            at: 5 * index as u64,
            server: index % n, // any server may propose; forwards to leader
            label: Label::new(*label),
            request: SmrRequest::Propose(*value),
        });
    }

    let outcome = sim.run();

    println!("=== PBFT-lite SMR embedded in the block DAG ===\n");
    println!(
        "{} proposals across {} leader labels; {} commit deliveries (expected {}).\n",
        commands.len(),
        4,
        outcome.deliveries.len(),
        expected
    );

    // Group commits per label, per server; all servers must agree on each
    // label's committed log.
    for label_id in 0..4u64 {
        let label = Label::new(label_id);
        let mut logs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for delivery in outcome.deliveries_for(label) {
            let SmrIndication::Committed(slot, value) = delivery.indication;
            logs[delivery.server.index()].push((slot, value));
        }
        println!(
            "  {} (leader s{}): {:?}",
            label,
            label_id % n as u64,
            logs[0]
        );
        for (server, log) in logs.iter().enumerate().skip(1) {
            assert_eq!(log, &logs[0], "server {server} diverged on {label}");
        }
    }

    println!("\n--- cost profile ---");
    println!(
        "wire messages : {} (blocks: {}, FWD: {})",
        outcome.net.messages_sent, outcome.net.blocks_sent, outcome.net.fwd_sent
    );
    println!("signatures    : {}", outcome.signatures);
    println!("\nOK: every replica committed identical logs for all four leaders.");
}
