//! Quickstart: byzantine reliable broadcast over a block DAG.
//!
//! Four servers jointly build a block DAG; server 0's user requests
//! `broadcast(42)` on instance ℓ1. The request travels inside a block;
//! every ECHO/READY of the underlying BRB protocol is *materialized
//! locally* by each server interpreting the DAG — no protocol message ever
//! crosses the network.
//!
//! Run with: `cargo run --example quickstart`

use dagbft::prelude::*;

fn main() {
    let config = SimConfig::new(4)
        .with_max_time(10_000)
        .with_stop_after_deliveries(4);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);

    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(42),
    });

    let outcome = sim.run();

    println!("=== dagbft quickstart: BRB broadcast(42) over a block DAG ===\n");
    for delivery in &outcome.deliveries {
        let BrbIndication::Deliver(value) = delivery.indication;
        println!(
            "t={:>5}ms  {} delivered {} on {}",
            delivery.at, delivery.server, value, delivery.label
        );
    }

    println!("\n--- wire traffic (the paper's compression claim, §4) ---");
    println!("messages on the wire : {:>6}", outcome.net.messages_sent);
    println!("  of which blocks    : {:>6}", outcome.net.blocks_sent);
    println!("  of which FWDs      : {:>6}", outcome.net.fwd_sent);
    println!("bytes on the wire    : {:>6}", outcome.net.bytes_sent);
    println!("signatures created   : {:>6}", outcome.signatures);

    let shim = outcome.shim(0);
    let stats = shim.interpreter().stats();
    println!("\n--- server 0's interpretation of the DAG ---");
    println!("blocks interpreted   : {:>6}", stats.blocks_interpreted);
    println!(
        "messages materialized: {:>6}  (ECHO/READY — never sent!)",
        stats.messages_materialized
    );
    println!("requests processed   : {:>6}", stats.requests_processed);
    println!("DAG size             : {:>6} blocks", shim.dag().len());

    assert_eq!(outcome.deliveries.len(), 4, "all four servers deliver");
    println!("\nOK: all 4 servers delivered 42.");
}
