//! Figure 4: the message buffers of BRB instance ℓ1, materialized on a DAG.
//!
//! Reconstructs the paper's Figure 4 scenario — `(ℓ1, broadcast(42))`
//! inscribed in server 0's genesis block of a 4-server block DAG — and
//! prints, for every block, the `Ms[in, ℓ1]` and `Ms[out, ℓ1]` buffers the
//! interpretation computes. None of these ECHO/READY messages is ever sent
//! over the network; every server interpreting this DAG "gets the same
//! picture" (§5).
//!
//! Run with: `cargo run --example fig4_trace`

use std::collections::BTreeMap;

use dagbft::dag::interpret::BlockState;
use dagbft::prelude::*;

/// Builds `rounds` rounds of a fully-connected block DAG for `n` servers;
/// the first server's genesis block carries `(ℓ1, broadcast(42))`.
fn build_dag(n: usize, rounds: u64) -> (BlockDag, Vec<Vec<Block>>) {
    let registry = KeyRegistry::generate(n, 4);
    let signers: Vec<_> = (0..n)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut dag = BlockDag::new();
    let mut layers: Vec<Vec<Block>> = Vec::new();

    for round in 0..rounds {
        let preds: Vec<BlockRef> = layers
            .last()
            .map(|layer| layer.iter().map(Block::block_ref).collect())
            .unwrap_or_default();
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = if round == 0 && index == 0 {
                vec![LabeledRequest::encode(
                    Label::new(1),
                    &BrbRequest::Broadcast(42u64),
                )]
            } else {
                vec![]
            };
            let block = Block::build(
                ServerId::new(index as u32),
                SeqNum::new(round),
                preds.clone(),
                requests,
                signer,
            );
            dag.insert(block.clone()).expect("preds inserted");
            layer.push(block);
        }
        layers.push(layer);
    }
    (dag, layers)
}

/// Renders a message set the way Figure 4 annotates blocks.
fn render<'a>(
    envelopes: impl Iterator<Item = &'a Envelope<BrbMessage<u64>>>,
    direction_in: bool,
) -> String {
    let mut by_message: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for envelope in envelopes {
        let message = match &envelope.message {
            BrbMessage::Echo(v) => format!("ECHO {v}"),
            BrbMessage::Ready(v) => format!("READY {v}"),
        };
        let party = if direction_in {
            envelope.sender.to_string()
        } else {
            envelope.receiver.to_string()
        };
        by_message.entry(message).or_default().push(party);
    }
    if by_message.is_empty() {
        return "∅".to_owned();
    }
    by_message
        .into_iter()
        .map(|(message, parties)| {
            let direction = if direction_in { "from" } else { "to" };
            format!("{message} {direction} {{{}}}", parties.join(", "))
        })
        .collect::<Vec<_>>()
        .join("; ")
}

fn main() {
    let n = 4;
    let rounds = 4;
    let (dag, layers) = build_dag(n, rounds);

    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter.step(&dag);
    let label = Label::new(1);

    println!("=== Figure 4: Ms[in/out, ℓ1] for broadcast(42) in B1.rs ===\n");
    for (round, layer) in layers.iter().enumerate() {
        println!("-- round k{round} --");
        for block in layer {
            let state: &BlockState<Brb<u64>> =
                interpreter.state(&block.block_ref()).expect("interpreted");
            println!(
                "  {}/{}  in  = {}",
                block.builder(),
                block.seq(),
                render(state.in_messages(label), true)
            );
            println!("        out = {}", render(state.out_messages(label), false));
        }
    }

    let deliveries: Vec<_> = interpreter
        .drain_indications()
        .into_iter()
        .filter(|i| i.label == label)
        .collect();
    println!("\n--- deliveries (lines 13–14 of Algorithm 2) ---");
    for indication in &deliveries {
        let BrbIndication::Deliver(value) = indication.indication;
        println!("  {} delivers {}", indication.server, value);
    }

    let stats = interpreter.stats();
    println!("\n--- the compression claim, quantified ---");
    println!(
        "blocks in the DAG      : {:>4}  (the only network objects)",
        dag.len()
    );
    println!(
        "messages materialized  : {:>4}  (ECHO/READY — zero sent on the wire)",
        stats.messages_materialized
    );

    assert_eq!(deliveries.len(), n, "every server delivers 42");
    println!("\nOK: all {n} simulated servers delivered 42 from the same DAG.");
}
