//! The embedding and the direct deployment implement the *same* protocol:
//! identical indication sets for identical workloads (Theorem 5.1's
//! interface preservation, checked against an independent implementation
//! of the traditional deployment) — while their cost profiles differ
//! exactly as the paper predicts (experiments E5/E6 shapes).

use std::collections::BTreeSet;

use dagbft::prelude::*;

fn dag_run(n: usize, values: &[u64]) -> SimOutcome<Brb<u64>> {
    let expected = values.len() * n;
    let config = SimConfig::new(n)
        .with_max_time(120_000)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for (i, value) in values.iter().enumerate() {
        sim.inject(Injection {
            at: 5 * i as u64,
            server: i % n,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(*value),
        });
    }
    sim.run()
}

fn direct_run(n: usize, values: &[u64]) -> dagbft::baseline::BaselineOutcome<Brb<u64>> {
    let expected = values.len() * n;
    let config = BaselineConfig::new(n)
        .with_max_time(120_000)
        .with_stop_after_deliveries(expected);
    let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
    for (i, value) in values.iter().enumerate() {
        sim.inject(DirectInjection {
            at: 5 * i as u64,
            server: i % n,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(*value),
        });
    }
    sim.run()
}

fn delivered_set<I: Clone + Ord>(deliveries: &[Delivery<I>]) -> BTreeSet<(usize, Label, I)> {
    deliveries
        .iter()
        .map(|d| (d.server.index(), d.label, d.indication.clone()))
        .collect()
}

#[test]
fn identical_indication_sets() {
    let values = [10, 20, 30];
    let n = 4;
    let dag = dag_run(n, &values);
    let direct = direct_run(n, &values);
    assert_eq!(
        delivered_set(&dag.deliveries),
        delivered_set(&direct.deliveries),
        "the embedding changed P's observable behaviour"
    );
}

#[test]
fn signature_batching_shape_e6() {
    // The paper's batching claim: the DAG signs blocks, the baseline signs
    // every message. With enough parallel instances the DAG's signature
    // count must be far below the baseline's.
    let n = 4;
    let values: Vec<u64> = (0..20).collect();
    let dag = dag_run(n, &values);
    let direct = direct_run(n, &values);
    assert!(
        dag.signatures * 2 < direct.signatures,
        "dag {} vs direct {}",
        dag.signatures,
        direct.signatures
    );
}

#[test]
fn message_amortization_shape_e7() {
    // Per-instance wire messages must *fall* with instance count on the
    // DAG (blocks are shared) and stay constant on the baseline.
    let n = 4;
    let small = dag_run(n, &[1]);
    let large = dag_run(n, &(0..30).collect::<Vec<u64>>());
    let per_instance_small = small.net.messages_sent as f64;
    let per_instance_large = large.net.messages_sent as f64 / 30.0;
    assert!(
        per_instance_large < per_instance_small / 2.0,
        "no amortization: {per_instance_small} vs {per_instance_large}"
    );

    let direct_small = direct_run(n, &[1]);
    let direct_large = direct_run(n, &(0..30).collect::<Vec<u64>>());
    let direct_per_small = direct_small.net.messages_sent as f64;
    let direct_per_large = direct_large.net.messages_sent as f64 / 30.0;
    assert!(
        (direct_per_large / direct_per_small - 1.0).abs() < 0.25,
        "baseline per-instance cost should be ~constant: {direct_per_small} vs {direct_per_large}"
    );
}

#[test]
fn latency_crossover_shape_e9() {
    // The baseline sends immediately; the DAG pays dissemination rounds.
    // With constant network latency, baseline delivery must be faster for
    // a single broadcast — the honest cost of batching.
    let n = 4;
    let values = [5];
    let dag = dag_run(n, &values);
    let direct = direct_run(n, &values);
    let dag_max = dag.latencies_for(Label::new(0)).into_iter().max().unwrap();
    let direct_max = direct
        .latencies_for(Label::new(0))
        .into_iter()
        .max()
        .unwrap();
    assert!(
        direct_max <= dag_max,
        "direct {direct_max}ms should not exceed dag {dag_max}ms"
    );
}

#[test]
fn silent_server_equivalence() {
    // Both deployments tolerate f silent servers identically at the
    // interface level.
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_role(3, Role::Silent)
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(9),
    });
    let dag = sim.run();

    let config = BaselineConfig::new(n)
        .with_max_time(60_000)
        .with_silent(3)
        .with_stop_after_deliveries(3);
    let mut sim: BaselineSimulation<Brb<u64>> = BaselineSimulation::new(config);
    sim.inject(DirectInjection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(9),
    });
    let direct = sim.run();

    let dag_set: BTreeSet<usize> = dag.deliveries.iter().map(|d| d.server.index()).collect();
    let direct_set: BTreeSet<usize> = direct
        .deliveries
        .iter()
        .filter(|d| d.server.index() != 3)
        .map(|d| d.server.index())
        .collect();
    assert_eq!(dag_set, direct_set);
}
