//! Crash–recovery end to end (§7): a server crashes mid-run, restarts from
//! its persisted DAG, catches up through gossip, and keeps participating —
//! without ever equivocating.

use std::collections::BTreeSet;

use dagbft::prelude::*;

/// The §7 restart scenario under an explicit signature scheme and
/// admission engine: crash mid-run, rejoin, catch up through gossip,
/// never equivocate. Recovery is interpretation-level — none of its code
/// paths may depend on which admission engine re-admits the replayed
/// blocks or which scheme signed them.
fn restart_case(scheme: SchemeKind, admission: AdmissionMode) {
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_scheme(scheme)
        .with_admission(admission)
        .with_role(
            3,
            Role::Restart {
                crash_at: 500,
                rejoin_at: 2_000,
            },
        )
        // Instance 1 delivers everywhere pre-crash (4); instance 2 is
        // injected while s3 is down and must deliver at all 4 after the
        // rejoin (another 4). Replayed indications are discarded by the
        // runner, so 8 total.
        .with_stop_after_deliveries(8);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(10),
    });
    sim.inject(Injection {
        at: 1_000, // while s3 is down
        server: 1,
        label: Label::new(2),
        request: BrbRequest::Broadcast(20),
    });
    let outcome = sim.run();

    // The restarted server delivered the instance injected during its
    // downtime.
    let late_deliverers: BTreeSet<usize> = outcome
        .deliveries_for(Label::new(2))
        .iter()
        .map(|d| d.server.index())
        .collect();
    assert!(
        late_deliverers.contains(&3),
        "{scheme:?}/{admission:?}: restarted server must catch up: {late_deliverers:?}"
    );
    assert_eq!(late_deliverers.len(), 4);

    // No equivocation: in every correct DAG, s3 has at most one block per
    // sequence number.
    for index in outcome.correct_servers() {
        let dag = outcome.shim(index).dag();
        assert!(
            dag.equivocations(ServerId::new(3)).is_empty(),
            "{scheme:?}/{admission:?}: restart must not equivocate (observer {index})"
        );
    }
    // The restarted server is a correct server at the end.
    assert!(outcome.correct_servers().contains(&3));
}

#[test]
fn restarted_server_catches_up_and_delivers() {
    restart_case(SchemeKind::Hmac, AdmissionMode::Index);
}

#[test]
fn restart_matrix_across_schemes_and_admission_engines() {
    // Every (scheme × admission engine) pair must survive the same crash:
    // the HMAC stand-in and real ed25519, each under the scan oracle, the
    // wave-batched index, and the parallel verification pipeline.
    for scheme in [SchemeKind::Hmac, SchemeKind::Ed25519] {
        for admission in [
            AdmissionMode::Index,
            AdmissionMode::Scan,
            AdmissionMode::Parallel { workers: 2 },
        ] {
            restart_case(scheme, admission);
        }
    }
}

#[test]
fn restart_is_transparent_to_other_servers() {
    // Other servers' delivered values are unaffected by the churn.
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_role(
            2,
            Role::Restart {
                crash_at: 300,
                rejoin_at: 1_500,
            },
        )
        .with_stop_after_deliveries(8);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..2u64 {
        sim.inject(Injection {
            at: i * 700, // one before, one during the outage
            server: 0,
            label: Label::new(i),
            request: BrbRequest::Broadcast(100 + i),
        });
    }
    let outcome = sim.run();
    for label in 0..2u64 {
        let values: BTreeSet<u64> = outcome
            .deliveries_for(Label::new(label))
            .iter()
            .map(|d| {
                let BrbIndication::Deliver(v) = d.indication;
                v
            })
            .collect();
        assert_eq!(values, [100 + label].into_iter().collect());
    }
}

#[test]
fn repeated_outages_still_converge() {
    // A flappy server: two restart cycles happen to the same index via a
    // long downtime window; the rest of the cluster never stalls.
    let n = 7; // f = 2: even counting the flapper as faulty, quorums hold
    let config = SimConfig::new(n)
        .with_max_time(90_000)
        .with_role(
            6,
            Role::Restart {
                crash_at: 200,
                rejoin_at: 5_000,
            },
        )
        .with_stop_after_deliveries(3 * 7);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..3u64 {
        sim.inject(Injection {
            at: i * 2_000,
            server: (i as usize) % 5,
            label: Label::new(i),
            request: BrbRequest::Broadcast(i),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 21, "all instances everywhere");
    for index in outcome.correct_servers() {
        assert!(outcome.shim(index).dag().check_invariants());
    }
}
