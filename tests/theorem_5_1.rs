//! Theorem 5.1: `shim(P)` implements `P`'s interface and preserves `P`'s
//! properties — exercised end-to-end for BRB (the paper's §5 example),
//! whose properties are validity, no duplication, integrity, consistency,
//! and totality.

use std::collections::{BTreeMap, BTreeSet};

use dagbft::prelude::*;

fn one_broadcast(n: usize, seed: u64, value: u64) -> SimOutcome<Brb<u64>> {
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_max_time(30_000)
        .with_stop_after_deliveries(n);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(value),
    });
    sim.run()
}

#[test]
fn validity_correct_broadcaster_delivers_everywhere() {
    for n in [4, 7, 10] {
        let outcome = one_broadcast(n, 1, 42);
        let delivered: BTreeSet<usize> = outcome
            .deliveries
            .iter()
            .map(|d| d.server.index())
            .collect();
        assert_eq!(delivered.len(), n, "validity/totality at n={n}");
        for delivery in &outcome.deliveries {
            assert_eq!(delivery.indication, BrbIndication::Deliver(42), "integrity");
        }
    }
}

#[test]
fn no_duplication_across_long_runs() {
    // Run far past delivery: no server may deliver the same instance twice.
    let config = SimConfig::new(4).with_max_time(5_000); // no early stop
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(7),
    });
    let outcome = sim.run();
    let mut per_server: BTreeMap<usize, usize> = BTreeMap::new();
    for delivery in &outcome.deliveries {
        *per_server.entry(delivery.server.index()).or_default() += 1;
    }
    for (server, count) in per_server {
        assert_eq!(count, 1, "server {server} delivered {count} times");
    }
}

#[test]
fn interface_preserved_request_to_indication() {
    // The user interface is exactly Rqsts/Inds of P (Lemmas A.17/A.18):
    // requesting broadcast(v) on ℓ yields indicate(deliver(v)) on ℓ.
    let outcome = one_broadcast(4, 3, 1234);
    for delivery in &outcome.deliveries {
        assert_eq!(delivery.label, Label::new(1));
        assert_eq!(delivery.indication, BrbIndication::Deliver(1234));
    }
}

#[test]
fn many_parallel_instances_all_deliver() {
    // 20 instances from different origins, all sharing the same blocks.
    let n = 4;
    let instances = 20;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_stop_after_deliveries(instances * n);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..instances {
        sim.inject(Injection {
            at: (i as u64) * 7,
            server: i % n,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(1000 + i as u64),
        });
    }
    let outcome = sim.run();
    let mut per_label: BTreeMap<Label, BTreeSet<usize>> = BTreeMap::new();
    for delivery in &outcome.deliveries {
        let BrbIndication::Deliver(value) = delivery.indication;
        assert_eq!(value, 1000 + delivery.label.id(), "integrity per instance");
        per_label
            .entry(delivery.label)
            .or_default()
            .insert(delivery.server.index());
    }
    assert_eq!(per_label.len(), instances);
    for (label, servers) in per_label {
        assert_eq!(servers.len(), n, "totality for {label}");
    }
}

#[test]
fn consistency_under_equivocating_broadcaster() {
    // The byzantine *broadcaster* equivocates at the DAG level while its
    // request is in flight; BRB consistency must hold regardless.
    for seed in [1, 2, 3, 4, 5] {
        let config = SimConfig::new(4)
            .with_seed(seed)
            .with_max_time(30_000)
            .with_role(0, Role::Equivocate { at_seq: 0 })
            .with_stop_after_deliveries(3);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(Injection {
            at: 0,
            server: 1,
            label: Label::new(1),
            request: BrbRequest::Broadcast(50),
        });
        let outcome = sim.run();
        let values: BTreeSet<u64> = outcome
            .deliveries
            .iter()
            .map(|d| {
                let BrbIndication::Deliver(v) = d.indication;
                v
            })
            .collect();
        assert!(values.len() <= 1, "seed {seed}: consistency violated");
    }
}

#[test]
fn liveness_with_maximum_faults() {
    // n = 7, f = 2: two byzantine servers (one silent, one equivocating).
    let config = SimConfig::new(7)
        .with_max_time(60_000)
        .with_role(5, Role::Silent)
        .with_role(6, Role::Equivocate { at_seq: 1 })
        .with_stop_after_deliveries(5);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(5),
    });
    let outcome = sim.run();
    let correct_deliveries = outcome
        .deliveries
        .iter()
        .filter(|d| d.server.index() < 5)
        .count();
    assert_eq!(correct_deliveries, 5, "all correct servers deliver");
}

#[test]
fn observed_indications_for_other_servers_match_own() {
    // Algorithm 2 indicates (ℓ, i, B.n) for *every* server's simulation;
    // the shim only surfaces its own (Algorithm 3 line 8). Check that the
    // observed indications for others agree with what those servers
    // actually delivered — the "every server comes to the same
    // conclusion" property made visible.
    // Run well past delivery (no early stop), so server 0's DAG contains
    // every server's delivery point.
    let config = SimConfig::new(4).with_seed(9).with_max_time(3_000);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(77),
    });
    let outcome = sim.run();
    // What each server actually delivered:
    let mut actual: BTreeMap<usize, u64> = BTreeMap::new();
    for delivery in &outcome.deliveries {
        let BrbIndication::Deliver(v) = delivery.indication;
        actual.insert(delivery.server.index(), v);
    }
    // Server 0's observations of others, reconstructed from its final shim
    // state: every other server's simulation must have indicated the same
    // value (the observed buffer is drained during the run by the
    // runner only for `delivered`; others accumulate in the shim).
    // Note: drain_observed requires &mut; SimOutcome exposes shims
    // immutably, so we check via the interpreter stats instead: all four
    // simulations indicated (4 indications total at server 0).
    let stats = outcome.shim(0).interpreter().stats();
    assert_eq!(stats.indications, 4, "one indication per simulated server");
    assert_eq!(actual.len(), 4);
}
