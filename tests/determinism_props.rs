//! Property tests for the paper's determinism lemmas.
//!
//! * Lemma 2.2 — properties of restrictive insertion, on random graphs;
//! * Lemma 4.2 — interpretation is independent of the interpreting server
//!   and of the order eligible blocks are picked, on random DAGs;
//! * replica convergence — random workloads over the simulator produce
//!   identical delivered sets at all correct servers.

use dagbft::dag::digraph::DiGraph;
use dagbft::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Lemma 2.2 on the generic digraph of §2.
// ---------------------------------------------------------------------

/// Builds a digraph from a spec: vertex i gets edges from a subset of
/// 0..i (always fresh inserts, like the block DAG).
fn graph_from_spec(spec: &[Vec<usize>]) -> DiGraph<usize> {
    let mut graph = DiGraph::new();
    for (v, sources) in spec.iter().enumerate() {
        graph.insert(v, sources.iter().copied().filter(|s| *s < v));
    }
    graph
}

fn graph_spec() -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..16, 0..6), 1..16)
}

proptest! {
    #[test]
    fn lemma_2_2_3_fresh_inserts_stay_acyclic(spec in graph_spec()) {
        let graph = graph_from_spec(&spec);
        prop_assert!(graph.is_acyclic());
    }

    #[test]
    fn lemma_2_2_1_reinsert_idempotent(spec in graph_spec()) {
        let graph = graph_from_spec(&spec);
        let mut again = graph.clone();
        for (v, sources) in spec.iter().enumerate() {
            again.insert(v, sources.iter().copied().filter(|s| *s < v));
        }
        prop_assert_eq!(graph, again);
    }

    #[test]
    fn lemma_2_2_2_prefix_is_subgraph(spec in graph_spec(), cut in 0usize..16) {
        let cut = cut.min(spec.len());
        let prefix = graph_from_spec(&spec[..cut]);
        let full = graph_from_spec(&spec);
        prop_assert!(prefix.le(&full));
    }

    #[test]
    fn union_is_upper_bound(spec_a in graph_spec(), spec_b in graph_spec()) {
        // For graphs built by fresh insertion over the same vertex
        // universe (content-addressed semantics), the union bounds both.
        // Note: `le` requires edge-completeness, which holds here because
        // a vertex's edges are a function of its spec entry — mirroring
        // blocks, whose edges are functions of their content. We emulate
        // by using identical specs for shared vertices.
        let shared = spec_a.len().min(spec_b.len());
        let mut spec_b = spec_b;
        spec_b[..shared].clone_from_slice(&spec_a[..shared]);
        let a = graph_from_spec(&spec_a);
        let b = graph_from_spec(&spec_b);
        let union = a.union(&b);
        prop_assert!(a.le(&union));
        prop_assert!(b.le(&union));
    }
}

// ---------------------------------------------------------------------
// Lemma 4.2 on random block DAGs.
// ---------------------------------------------------------------------

/// A random-DAG spec: per round and server, whether the server produces a
/// block, and whether it carries a request.
#[derive(Debug, Clone)]
struct DagSpec {
    n: usize,
    rounds: Vec<Vec<(bool, Option<u64>)>>,
}

fn dag_spec() -> impl Strategy<Value = DagSpec> {
    (2usize..5)
        .prop_flat_map(|n| {
            let round =
                proptest::collection::vec((any::<bool>(), proptest::option::of(0u64..100)), n..=n);
            (Just(n), proptest::collection::vec(round, 1..5))
        })
        .prop_map(|(n, rounds)| DagSpec { n, rounds })
}

/// Builds a block DAG where every produced block references all blocks of
/// the previous produced layer (and its own parent chain).
fn build_dag(spec: &DagSpec) -> BlockDag {
    let registry = KeyRegistry::generate(spec.n, 3);
    let signers: Vec<_> = (0..spec.n)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    let mut dag = BlockDag::new();
    let mut seqs = vec![0u64; spec.n];
    let mut parents: Vec<Option<BlockRef>> = vec![None; spec.n];
    let mut last_layer: Vec<BlockRef> = Vec::new();

    for round in &spec.rounds {
        let mut this_layer = Vec::new();
        for (server, (produce, request)) in round.iter().enumerate() {
            if !produce {
                continue;
            }
            let mut preds: Vec<BlockRef> = last_layer.clone();
            if let Some(parent) = parents[server] {
                if !preds.contains(&parent) {
                    preds.push(parent);
                }
            }
            let requests = request
                .map(|v| {
                    vec![LabeledRequest::encode(
                        Label::new(v % 3),
                        &BrbRequest::Broadcast(v),
                    )]
                })
                .unwrap_or_default();
            let block = Block::build(
                ServerId::new(server as u32),
                SeqNum::new(seqs[server]),
                preds,
                requests,
                &signers[server],
            );
            seqs[server] += 1;
            parents[server] = Some(block.block_ref());
            dag.insert(block.clone()).unwrap();
            this_layer.push(block.block_ref());
        }
        if !this_layer.is_empty() {
            last_layer = this_layer;
        }
    }
    dag
}

/// Interprets `dag`, picking eligible blocks with a seeded shuffle, and
/// returns a canonical fingerprint of all buffers.
fn interpret_fingerprint(dag: &BlockDag, pick_seed: u64) -> Vec<String> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(pick_seed);
    let mut interpreter: Interpreter<Brb<u64>> =
        Interpreter::new(ProtocolConfig::for_n(dag.known_servers().count().max(1)));
    loop {
        let mut eligible = interpreter.eligible(dag);
        if eligible.is_empty() {
            break;
        }
        eligible.shuffle(&mut rng);
        interpreter
            .interpret_block(dag, &eligible[0])
            .expect("eligible");
    }
    let mut fingerprint = Vec::new();
    let mut refs: Vec<BlockRef> = dag.refs().copied().collect();
    refs.sort();
    for r in refs {
        let state = interpreter.state(&r).expect("interpreted");
        for label in 0..3u64 {
            let label = Label::new(label);
            let outs: Vec<String> = state
                .out_messages(label)
                .map(|e| format!("{e:?}"))
                .collect();
            let ins: Vec<String> = state.in_messages(label).map(|e| format!("{e:?}")).collect();
            fingerprint.push(format!("{r}/{label}: out={outs:?} in={ins:?}"));
        }
    }
    fingerprint
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma_4_2_interpretation_order_irrelevant(spec in dag_spec(), seed_a in 0u64..1000, seed_b in 0u64..1000) {
        let dag = build_dag(&spec);
        prop_assert_eq!(
            interpret_fingerprint(&dag, seed_a),
            interpret_fingerprint(&dag, seed_b)
        );
    }

    #[test]
    fn dag_invariants_hold_for_random_specs(spec in dag_spec()) {
        let dag = build_dag(&spec);
        prop_assert!(dag.check_invariants());
    }
}

// ---------------------------------------------------------------------
// Replica convergence over the full simulator.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replicas_deliver_identical_sets(
        seed in 0u64..500,
        values in proptest::collection::vec(0u64..1000, 1..6),
        drop_pct in 0usize..30,
    ) {
        let n = 4;
        let expected = values.len() * n;
        let config = SimConfig::new(n)
            .with_seed(seed)
            .with_max_time(120_000)
            .with_network(NetworkModel::default().with_drop_rate(drop_pct as f64 / 100.0))
            .with_stop_after_deliveries(expected);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        for (i, value) in values.iter().enumerate() {
            sim.inject(Injection {
                at: (i as u64) * 13,
                server: i % n,
                label: Label::new(i as u64),
                request: BrbRequest::Broadcast(*value),
            });
        }
        let outcome = sim.run();
        prop_assert_eq!(outcome.deliveries.len(), expected, "all delivered");
        // Per label: all servers delivered the same value.
        for (i, value) in values.iter().enumerate() {
            let per_label = outcome.deliveries_for(Label::new(i as u64));
            prop_assert_eq!(per_label.len(), n);
            for delivery in per_label {
                prop_assert_eq!(&delivery.indication, &BrbIndication::Deliver(*value));
            }
        }
    }
}
