//! End-to-end application scenarios: payments on BRB instances and
//! multi-leader SMR — the workloads the paper's introduction motivates.

use std::collections::BTreeMap;

use dagbft::prelude::*;
use dagbft::protocols::Transfer;

#[test]
fn payments_replicas_converge() {
    let n = 4;
    let transfers = [
        Transfer {
            from: AccountId(1),
            to: AccountId(2),
            amount: 40,
            seq: 0,
        },
        Transfer {
            from: AccountId(2),
            to: AccountId(3),
            amount: 35,
            seq: 0,
        },
        Transfer {
            from: AccountId(1),
            to: AccountId(3),
            amount: 10,
            seq: 1,
        },
        Transfer {
            from: AccountId(3),
            to: AccountId(1),
            amount: 20,
            seq: 0,
        },
    ];
    let expected = transfers.len() * n;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Brb<Transfer>> = Simulation::new(config);
    for (i, transfer) in transfers.iter().enumerate() {
        sim.inject(Injection {
            at: 10 * i as u64,
            server: i % n,
            label: transfer.label(),
            request: BrbRequest::Broadcast(transfer.clone()),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected);

    let initial = [(AccountId(1), 100u64), (AccountId(2), 0), (AccountId(3), 0)];
    let mut reference: Option<Ledger> = None;
    for server in 0..n {
        let mut ledger = Ledger::new(initial);
        let delivered = outcome
            .deliveries
            .iter()
            .filter(|d| d.server.index() == server)
            .map(|d| {
                let BrbIndication::Deliver(t) = &d.indication;
                t.clone()
            });
        let leftover = ledger.settle(delivered);
        assert!(leftover.is_empty(), "server {server}: {leftover:?}");
        assert_eq!(ledger.total_supply(), 100);
        match &reference {
            None => reference = Some(ledger),
            Some(expected) => assert_eq!(&ledger, expected, "server {server} diverged"),
        }
    }
    let ledger = reference.unwrap();
    assert_eq!(ledger.balance(AccountId(1)), 70);
    assert_eq!(ledger.balance(AccountId(2)), 5);
    assert_eq!(ledger.balance(AccountId(3)), 25);
}

#[test]
fn payments_double_spend_rejected_everywhere() {
    // The same (from, seq) broadcast twice with different recipients: the
    // BRB instance for that label delivers at most one of them, and the
    // ledger's sequence rule blocks any replay on a *different* label.
    let n = 4;
    let legit = Transfer {
        from: AccountId(1),
        to: AccountId(2),
        amount: 60,
        seq: 0,
    };
    let double = Transfer {
        from: AccountId(1),
        to: AccountId(3),
        amount: 60,
        seq: 0,
    };
    assert_eq!(legit.label(), double.label(), "same label: same instance");

    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_stop_after_deliveries(n);
    let mut sim: Simulation<Brb<Transfer>> = Simulation::new(config);
    // Two conflicting requests race on the same instance via different
    // servers.
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: legit.label(),
        request: BrbRequest::Broadcast(legit.clone()),
    });
    sim.inject(Injection {
        at: 0,
        server: 2,
        label: double.label(),
        request: BrbRequest::Broadcast(double.clone()),
    });
    let outcome = sim.run();

    // BRB consistency: every server that delivered, delivered the same one.
    let mut delivered_values: BTreeMap<usize, Transfer> = BTreeMap::new();
    for delivery in &outcome.deliveries {
        let BrbIndication::Deliver(t) = &delivery.indication;
        let existing = delivered_values.insert(delivery.server.index(), t.clone());
        assert!(existing.is_none(), "no duplication per server");
    }
    let distinct: std::collections::BTreeSet<&Transfer> = delivered_values.values().collect();
    assert_eq!(distinct.len(), 1, "conflicting transfers delivered");

    // Applying the winner twice fails on the sequence rule.
    let winner = distinct.into_iter().next().unwrap().clone();
    let mut ledger = Ledger::new([(AccountId(1), 100u64)]);
    ledger.apply(&winner).unwrap();
    assert!(ledger.apply(&winner).is_err(), "replay rejected");
}

#[test]
fn smr_multi_leader_logs_agree() {
    let n = 4;
    let proposals: Vec<(u64, u64)> = (0..8).map(|i| (i % 4, 100 + i)).collect();
    let expected = proposals.len() * n;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Smr<u64>> = Simulation::new(config);
    for (i, (label, value)) in proposals.iter().enumerate() {
        sim.inject(Injection {
            at: 3 * i as u64,
            server: i % n,
            label: Label::new(*label),
            request: SmrRequest::Propose(*value),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected);

    for label in 0..4u64 {
        let mut logs: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
        for delivery in outcome.deliveries_for(Label::new(label)) {
            let SmrIndication::Committed(slot, value) = delivery.indication;
            logs.entry(delivery.server.index())
                .or_default()
                .push((slot, value));
        }
        let reference = logs.values().next().unwrap().clone();
        assert_eq!(reference.len(), 2, "two commits per label");
        // Slots are contiguous from 0 (ordered delivery).
        for (i, (slot, _)) in reference.iter().enumerate() {
            assert_eq!(*slot, i as u64);
        }
        for (server, log) in logs {
            assert_eq!(log, reference, "server {server} diverged on ℓ{label}");
        }
    }
}

#[test]
fn smr_over_dag_with_silent_follower() {
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_role(3, Role::Silent)
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Smr<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(0),
        request: SmrRequest::Propose(7),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 3);
    assert!(outcome
        .deliveries
        .iter()
        .all(|d| d.indication == SmrIndication::Committed(0, 7)));
}
