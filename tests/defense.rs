//! Adversarial peer-defense scenarios: the scored-admission layer under
//! attack.
//!
//! Three attack shapes drive the graduated response end to end over the
//! full simulator:
//!
//! * **slow-loris** — a peer re-broadcasting protocol-valid duplicates
//!   soaks the token bucket and accumulates duplicate-flood score, while
//!   honest dissemination keeps flowing;
//! * **flood-then-behave** — forged blocks earn a ban; once the flood
//!   stops, the volatile score decays and the reformed peer's valid
//!   blocks are admitted again;
//! * **colluding equivocator cliques** — provable forks convict every
//!   member (§6 accountability, surfaced on [`SimOutcome`]), deprioritize
//!   their blocks, and leave honest liveness intact.
//!
//! Determinism is pinned alongside: identical runs produce byte-identical
//! defense-event trajectories across all three admission engines and both
//! signature schemes, and a crash/restart replays to the same durable
//! score.

use dagbft::prelude::*;
use proptest::prelude::*;

/// Defense knobs for the attack scenarios: the default scoring with a
/// tighter block bucket (capacity 16, refill 4 per 100 ms — twice the
/// honest dissemination rate, far under a flooder's).
fn attack_defense() -> DefenseConfig {
    DefenseConfig::enabled().with_block_bucket(16, 4)
}

fn broadcast(at: TimeMs, server: usize, label: u64, value: u64) -> Injection<Brb<u64>> {
    Injection {
        at,
        server,
        label: Label::new(label),
        request: BrbRequest::Broadcast(value),
    }
}

// ---------------------------------------------------------------------
// Scenario 1: slow-loris duplicate flood.
// ---------------------------------------------------------------------

#[test]
fn slow_loris_is_throttled_and_scored_while_honest_liveness_holds() {
    let loris = ServerId::new(3);
    let config = SimConfig::new(4)
        .with_max_time(3_000)
        .with_defense(attack_defense())
        .with_role(3, Role::SlowLoris { repeat: 6 });
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(broadcast(0, 0, 1, 42));
    let outcome = sim.run();

    // Liveness: every correct server delivers despite the flood.
    let delivered = outcome.deliveries_for(Label::new(1));
    assert_eq!(delivered.len(), 3, "honest servers all delivered");
    assert!(delivered
        .iter()
        .all(|d| d.indication == BrbIndication::Deliver(42)));

    for server in outcome.correct_servers() {
        let defense = outcome.shim(server).gossip().defense();
        let stats = defense.stats();
        // The token bucket bit: surplus copies were dropped pre-admission.
        assert!(stats.throttled_blocks > 0, "server {server} throttled");
        // Duplicate copies that did pass the bucket were scored.
        assert!(
            defense.events().iter().any(|e| matches!(
                e,
                DefenseEvent::Scored {
                    peer,
                    offense: Offense::DuplicateFlood,
                    ..
                } if *peer == loris
            )),
            "server {server} scored the duplicate flood"
        );
        assert!(defense.score(loris, outcome.finished_at) > 0);
        // Honest peers kept a clean-enough record to stay un-banned.
        for honest in outcome.correct_servers() {
            if honest != server {
                assert!(!defense.is_banned(ServerId::new(honest as u32), outcome.finished_at));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scenario 2: flood, get banned, reform, recover standing.
// ---------------------------------------------------------------------

#[test]
fn flood_then_behave_earns_a_ban_then_decays_back_to_standing() {
    let flooder = ServerId::new(3);
    let config = SimConfig::new(4)
        .with_max_time(30_000)
        .with_defense(attack_defense())
        .with_role(
            3,
            Role::FloodThenBehave {
                until: 2_000,
                per_round: 3,
            },
        );
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(broadcast(100, 0, 1, 7)); // during the flood
    sim.inject(broadcast(20_000, 1, 2, 8)); // after the reform
    let outcome = sim.run();

    // Liveness through both phases.
    assert_eq!(outcome.deliveries_for(Label::new(1)).len(), 3);
    assert_eq!(outcome.deliveries_for(Label::new(2)).len(), 3);

    for server in outcome.correct_servers() {
        let defense = outcome.shim(server).gossip().defense();
        let stats = defense.stats();
        // Forged blocks were scored as invalid and escalated to a ban;
        // flood traffic arriving during the ban was dropped unscored.
        assert!(stats.bans >= 1, "server {server} banned the flooder");
        assert!(
            stats.banned_blocks > 0,
            "server {server} dropped banned traffic"
        );
        assert!(defense.events().iter().any(|e| matches!(
            e,
            DefenseEvent::Scored {
                peer,
                offense: Offense::InvalidBlock,
                ..
            } if *peer == flooder
        )));
        assert!(defense
            .events()
            .iter()
            .any(|e| matches!(e, DefenseEvent::Banned { peer, .. } if *peer == flooder)));
        // The ban lapsed and was observed lifting on a later admission.
        assert!(
            defense
                .events()
                .iter()
                .any(|e| matches!(e, DefenseEvent::BanLifted { peer, .. } if *peer == flooder)),
            "server {server} saw the ban lift"
        );
        assert!(!defense.is_banned(flooder, outcome.finished_at));
        // Score recovery: decay brought the flooder well under its peak.
        let peak = defense
            .events()
            .iter()
            .filter_map(|e| match e {
                DefenseEvent::Scored { peer, score, .. } if *peer == flooder => Some(*score),
                _ => None,
            })
            .max()
            .expect("flooder was scored");
        let settled = defense.score(flooder, outcome.finished_at);
        assert!(
            settled < peak / 2,
            "server {server}: score {settled} did not decay from peak {peak}"
        );
        // Standing recovered: the reformed peer's valid blocks are in.
        let dag = outcome.shim(server).dag();
        assert!(
            dag.refs()
                .any(|r| dag.get(r).is_some_and(|block| block.builder() == flooder)),
            "server {server} admitted the reformed flooder's blocks"
        );
    }
}

// ---------------------------------------------------------------------
// Scenario 3: colluding equivocator clique.
// ---------------------------------------------------------------------

#[test]
fn equivocator_clique_is_convicted_deprioritized_and_outlived() {
    let n = 7; // f = 2: the clique is exactly at the fault budget.
    let clique = [ServerId::new(5), ServerId::new(6)];
    let config = SimConfig::new(n)
        .with_max_time(20_000)
        .with_defense(DefenseConfig::enabled())
        .with_role(5, Role::Equivocate { at_seq: 0 })
        .with_role(6, Role::Equivocate { at_seq: 0 })
        .with_stop_after_deliveries(5);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(broadcast(0, 0, 1, 99));
    let outcome = sim.run();

    // Liveness and consistency for the five correct servers.
    let delivered = outcome.deliveries_for(Label::new(1));
    assert_eq!(delivered.len(), 5, "all correct servers delivered");
    assert!(delivered
        .iter()
        .all(|d| d.indication == BrbIndication::Deliver(99)));

    // §6 accountability, surfaced on the outcome: both clique members
    // are convicted by transferable proofs.
    for member in clique {
        assert!(outcome.accused.contains(&member), "{member} convicted");
    }
    assert!(outcome.equivocation_proofs >= clique.len());

    // At least one correct server caught each member live and
    // deprioritized it (catching requires both fork versions in one DAG,
    // which FWD spreads but the early-stop may truncate for some).
    for member in clique {
        assert!(
            outcome.correct_servers().iter().any(|server| {
                let defense = outcome.shim(*server).gossip().defense();
                defense.is_deprioritized(member)
                    && defense.events().iter().any(|e| {
                        matches!(
                            e,
                            DefenseEvent::Deprioritized { builder, .. } if *builder == member
                        )
                    })
            }),
            "{member} deprioritized somewhere"
        );
    }
}

// ---------------------------------------------------------------------
// Crash/restart: the durable score component replays exactly.
// ---------------------------------------------------------------------

#[test]
fn durable_crash_replays_equivocation_scores() {
    let equivocator = ServerId::new(0);
    let config = SimConfig::new(4)
        .with_max_time(10_000)
        .with_defense(DefenseConfig::enabled())
        .with_role(0, Role::Equivocate { at_seq: 0 });
    let mut sim: Simulation<Brb<u64>> =
        Simulation::new(config).with_durable_store(1, Box::new(MemoryStore::new()), 5_000);
    sim.inject(broadcast(0, 1, 1, 11));
    let outcome = sim.run();
    assert_eq!(
        outcome.recoveries.len(),
        1,
        "server 1 crashed and recovered"
    );

    // The recovered server re-derived the conviction from its DAG: same
    // durable (equivocation) score component as a server that never
    // crashed, and the audit trail records the recovered conviction.
    let recovered = outcome.shim(1).gossip().defense();
    let witness = outcome.shim(2).gossip().defense();
    assert!(recovered.is_deprioritized(equivocator));
    assert!(witness.is_deprioritized(equivocator));
    let durable = |defense: &PeerDefense| {
        defense
            .snapshots(outcome.finished_at)
            .into_iter()
            .find(|(peer, _)| *peer == equivocator)
            .map(|(_, snapshot)| snapshot.equivocations)
            .unwrap_or(0)
    };
    assert_eq!(durable(recovered), durable(witness));
    assert!(durable(recovered) >= 1);
    assert!(
        recovered.score(equivocator, outcome.finished_at)
            >= recovered.config().equivocation_penalty
    );
    assert!(recovered.events().iter().any(|e| matches!(
        e,
        DefenseEvent::Deprioritized { builder, .. } if *builder == equivocator
    )));
}

// ---------------------------------------------------------------------
// Determinism: trajectories and DAGs across engines and schemes.
// ---------------------------------------------------------------------

/// Runs the slow-loris scenario and returns per-correct-server defense
/// trajectories plus a whole-run fingerprint (deliveries, wire counters,
/// DAG block hashes).
fn defended_run(
    seed: u64,
    admission: AdmissionMode,
    scheme: SchemeKind,
    repeat: usize,
    drop_rate: f64,
) -> (Vec<Vec<u8>>, Vec<u8>) {
    let config = SimConfig::new(4)
        .with_seed(seed)
        .with_max_time(4_000)
        .with_network(NetworkModel::default().with_drop_rate(drop_rate))
        .with_admission(admission)
        .with_scheme(scheme)
        .with_defense(attack_defense())
        .with_role(3, Role::SlowLoris { repeat });
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(broadcast(0, 0, 1, 1000 + seed));
    let outcome = sim.run();
    let trajectories: Vec<Vec<u8>> = outcome
        .correct_servers()
        .into_iter()
        .map(|server| outcome.shim(server).gossip().defense().trajectory_bytes())
        .collect();
    let mut fingerprint = Vec::new();
    for delivery in &outcome.deliveries {
        fingerprint.extend_from_slice(
            format!(
                "d:{}:{}:{:?}\n",
                delivery.at, delivery.server, delivery.indication
            )
            .as_bytes(),
        );
    }
    fingerprint.extend_from_slice(
        format!(
            "net:{}:{} clock:{}\n",
            outcome.net.messages_sent, outcome.net.bytes_sent, outcome.finished_at
        )
        .as_bytes(),
    );
    for server in outcome.correct_servers() {
        if let Some(dag) = outcome.dag(server) {
            let mut refs: Vec<_> = dag.refs().copied().collect();
            refs.sort();
            for r in refs {
                let block = dag.get(&r).expect("listed ref present");
                fingerprint.extend_from_slice(
                    dagbft::crypto::sha256(block.wire_bytes())
                        .to_hex()
                        .as_bytes(),
                );
                fingerprint.push(b'\n');
            }
        }
    }
    (trajectories, fingerprint)
}

#[test]
fn defended_runs_are_byte_identical_across_admission_engines() {
    for seed in [0, 42] {
        let index = defended_run(seed, AdmissionMode::Index, SchemeKind::Hmac, 5, 0.05);
        let scan = defended_run(seed, AdmissionMode::Scan, SchemeKind::Hmac, 5, 0.05);
        assert_eq!(index, scan, "seed {seed}: index vs scan diverged");
        let parallel = defended_run(
            seed,
            AdmissionMode::Parallel { workers: 2 },
            SchemeKind::Hmac,
            5,
            0.05,
        );
        assert_eq!(index, parallel, "seed {seed}: index vs parallel diverged");
    }
}

#[test]
fn defense_trajectories_are_scheme_independent() {
    // Signatures have one wire size for every scheme, so the defense
    // layer's byte buckets, scores, and event timestamps must not move
    // when the scheme swaps — only block content bytes (hence the DAG
    // hashes) may.
    for seed in [0, 42] {
        let hmac = defended_run(seed, AdmissionMode::Index, SchemeKind::Hmac, 5, 0.05);
        let ed25519 = defended_run(seed, AdmissionMode::Index, SchemeKind::Ed25519, 5, 0.05);
        assert_eq!(hmac.0, ed25519.0, "seed {seed}: trajectories moved");
        assert_ne!(
            hmac.1, ed25519.1,
            "seed {seed}: schemes gave identical block bytes"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: identical offense sequences produce
    /// byte-identical score trajectories whichever admission engine runs
    /// them and whichever signature scheme signs the blocks.
    #[test]
    fn score_trajectories_identical_across_engines_and_schemes(
        seed in 0u64..500,
        repeat in 2usize..6,
        drop_pct in 0usize..20,
    ) {
        let drop_rate = drop_pct as f64 / 100.0;
        let (index, _) = defended_run(seed, AdmissionMode::Index, SchemeKind::Hmac, repeat, drop_rate);
        let (scan, _) = defended_run(seed, AdmissionMode::Scan, SchemeKind::Hmac, repeat, drop_rate);
        prop_assert_eq!(&index, &scan, "index vs scan");
        let (parallel, _) = defended_run(
            seed,
            AdmissionMode::Parallel { workers: 2 },
            SchemeKind::Hmac,
            repeat,
            drop_rate,
        );
        prop_assert_eq!(&index, &parallel, "index vs parallel");
        let (ed25519, _) = defended_run(seed, AdmissionMode::Index, SchemeKind::Ed25519, repeat, drop_rate);
        prop_assert_eq!(&index, &ed25519, "hmac vs ed25519");
        // The trajectories are non-trivial: the loris actually offended.
        prop_assert!(index.iter().any(|t| !t.is_empty()), "no defensive action at all");
    }
}
