//! Experiment E12: safety of the embedded protocols under byzantine
//! behaviour mixes at `f ≤ ⌊(n−1)/3⌋`, and graceful degradation beyond.

use std::collections::BTreeSet;

use dagbft::prelude::*;

fn values_delivered(outcome: &SimOutcome<Brb<u64>>) -> BTreeSet<u64> {
    outcome
        .deliveries
        .iter()
        .map(|d| {
            let BrbIndication::Deliver(v) = d.indication;
            v
        })
        .collect()
}

#[test]
fn silent_servers_at_f_do_not_block() {
    let config = SimConfig::new(4)
        .with_max_time(30_000)
        .with_role(3, Role::Silent)
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1),
        request: BrbRequest::Broadcast(8),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 3);
    assert_eq!(values_delivered(&outcome), [8].into_iter().collect());
}

#[test]
fn selective_broadcaster_starves_no_one() {
    // s0 sends its blocks only to s1; s2/s3 must still converge via the
    // references in s1's blocks + FWD recovery (Algorithm 1 lines 10–13).
    let config = SimConfig::new(4)
        .with_max_time(60_000)
        .with_role(
            0,
            Role::SelectiveBroadcast {
                targets: [1].into_iter().collect(),
            },
        )
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1),
        request: BrbRequest::Broadcast(3),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 3, "correct servers delivered");
    // FWD requests actually happened (the starved servers pulled blocks).
    assert!(outcome.net.fwd_sent > 0, "selective sending forced FWDs");
}

#[test]
fn equivocator_visible_in_all_correct_dags_eventually() {
    let config = SimConfig::new(4)
        .with_max_time(20_000)
        .with_role(2, Role::Equivocate { at_seq: 1 });
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    for index in outcome.correct_servers() {
        let equivocations = outcome.shim(index).dag().equivocations(ServerId::new(2));
        assert_eq!(
            equivocations.len(),
            1,
            "server {index} did not record the equivocation"
        );
        assert_eq!(equivocations[0].0, SeqNum::new(1));
    }
}

#[test]
fn mixed_adversary_at_n_10() {
    // n = 10, f = 3: silent + equivocator + selective — the full zoo.
    let config = SimConfig::new(10)
        .with_max_time(60_000)
        .with_role(7, Role::Silent)
        .with_role(8, Role::Equivocate { at_seq: 0 })
        .with_role(
            9,
            Role::SelectiveBroadcast {
                targets: [0, 1, 2].into_iter().collect(),
            },
        )
        .with_stop_after_deliveries(7);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(10),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 7, "all correct servers deliver");
    assert_eq!(values_delivered(&outcome), [10].into_iter().collect());
}

#[test]
fn beyond_f_silent_safety_preserved_liveness_lost() {
    // 2 silent of 4 (> f = 1): BRB cannot reach quorums — nothing may be
    // delivered (safety over liveness), and nothing may be delivered
    // *inconsistently*.
    let config = SimConfig::new(4)
        .with_max_time(10_000)
        .with_role(2, Role::Silent)
        .with_role(3, Role::Silent);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(4),
    });
    let outcome = sim.run();
    assert!(
        outcome.deliveries.is_empty(),
        "2f+1 quorum unreachable with n−f−1 = 2 correct echoes"
    );
}

#[test]
fn crash_recovery_of_the_rest() {
    // One crash mid-run: remaining servers keep building and delivering
    // later instances.
    let config = SimConfig::new(4)
        .with_max_time(60_000)
        .with_role(3, Role::Crash { at: 500 })
        // Instance 1 may deliver at all 4 servers before the crash at
        // t=500; instance 2 delivers at the 3 survivors.
        .with_stop_after_deliveries(7);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    sim.inject(Injection {
        at: 2_000, // after the crash
        server: 1,
        label: Label::new(2),
        request: BrbRequest::Broadcast(2),
    });
    let outcome = sim.run();
    let late: Vec<_> = outcome
        .deliveries
        .iter()
        .filter(|d| d.label == Label::new(2))
        .collect();
    assert_eq!(late.len(), 3, "post-crash instance delivered by survivors");
}

#[test]
fn bcb_consistency_but_not_totality_under_equivocation() {
    // The framework preserves each P's *exact* property set: consistent
    // broadcast keeps consistency under a byzantine requester, but unlike
    // BRB it never promises totality. We assert only consistency here.
    let config = SimConfig::new(4)
        .with_max_time(20_000)
        .with_role(0, Role::Equivocate { at_seq: 0 });
    let mut sim: Simulation<Bcb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1),
        request: BcbRequest::Broadcast(6),
    });
    let outcome = sim.run();
    let values: BTreeSet<u64> = outcome
        .deliveries
        .iter()
        .map(|d| {
            let BcbIndication::Deliver(v) = d.indication;
            v
        })
        .collect();
    assert!(values.len() <= 1, "BCB consistency violated");
}

#[test]
fn smr_byzantine_leader_halts_safely() {
    // Label 0 → leader s0, which is byzantine-silent: its instance makes
    // no progress, but a different label with a correct leader commits.
    let config = SimConfig::new(4)
        .with_max_time(30_000)
        .with_role(0, Role::Silent)
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Smr<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(0), // leader s0: will never commit
        request: SmrRequest::Propose(111),
    });
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1), // leader s1: commits
        request: SmrRequest::Propose(222),
    });
    let outcome = sim.run();
    for delivery in &outcome.deliveries {
        assert_eq!(
            delivery.label,
            Label::new(1),
            "only the correct leader commits"
        );
        assert_eq!(delivery.indication, SmrIndication::Committed(0, 222));
    }
    assert_eq!(outcome.deliveries.len(), 3);
}

#[test]
fn equivocation_yields_transferable_proofs() {
    // §6 accountability: every correct server can extract a self-contained
    // proof convicting the equivocator, verifiable by any third party.
    let config = SimConfig::new(4)
        .with_max_time(20_000)
        .with_role(1, Role::Equivocate { at_seq: 0 });
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(3),
    });
    let outcome = sim.run();
    let registry = KeyRegistry::generate(4, 42); // same seed as SimConfig::new
    let verifier = registry.verifier();
    for index in outcome.correct_servers() {
        let proofs = dagbft::dag::accountability::collect_proofs(outcome.shim(index).dag());
        assert_eq!(proofs.len(), 1, "server {index} extracts one proof");
        let proof = &proofs[0];
        assert_eq!(proof.accused(), ServerId::new(1));
        assert!(proof.verify(&verifier), "proof convinces a third party");
        // Transferable: survives the wire.
        let bytes = dagbft::codec::encode_to_vec(proof);
        let decoded: dagbft::dag::EquivocationProof =
            dagbft::codec::decode_from_slice(&bytes).unwrap();
        assert!(decoded.verify(&verifier));
    }
}

#[test]
fn forged_signature_blocks_never_enter_dags() {
    // Inject a block with a forged signature directly through the runner's
    // network: every correct server must reject it. We emulate by running
    // a normal sim then checking the gossip rejection counters are zero
    // (no forgery happened) — and separately, at the unit level, that a
    // forged block is rejected (covered in core). Here we assert the
    // aggregate invariant: every block in every correct DAG verifies.
    let config = SimConfig::new(4)
        .with_max_time(10_000)
        .with_role(0, Role::Equivocate { at_seq: 0 })
        .with_stop_after_deliveries(3);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 1,
        label: Label::new(1),
        request: BrbRequest::Broadcast(2),
    });
    let outcome = sim.run();
    let registry = KeyRegistry::generate(4, 42); // same seed as SimConfig::new
    let verifier = registry.verifier();
    for index in outcome.correct_servers() {
        for block in outcome.shim(index).dag().iter() {
            assert!(block.verify_signature(&verifier));
        }
    }
}
