//! Durable-store crash determinism (§7: the DAG is the log): a server
//! that crashes at an instant and is rebuilt purely from its journal must
//! be *invisible* in the run's fingerprint — deliveries, wire traffic,
//! crypto counters, the final clock, and every block's canonical bytes
//! are byte-identical to the same seed run without the crash. The same
//! holds when recovery goes through the real journal format
//! ([`MemStore`]/[`FileStore`]) and through snapshot catch-up, which must
//! additionally replay only the post-snapshot suffix.
//!
//! Also here, at the shim level:
//!
//! * a journal that lost a *peer* block off its tail recovers to a valid
//!   prefix, and the first later block referencing the lost one makes
//!   gossip re-fetch it via `FWD` — durability degrades to catch-up,
//!   never to a stuck server;
//! * a journal that lost an *own* block below the durable tip marker is
//!   refused outright ([`RecoverError::OwnChainTruncated`]) — resuming
//!   would re-sign an already-broadcast sequence number, i.e. equivocate
//!   (the paper's §7 caveat).

use dagbft::prelude::*;

/// The determinism-smoke seed set (mirrors `cross_seed_determinism`).
const SEEDS: [u64; 5] = [0, 1, 7, 42, 1337];

const N: usize = 4;
/// Three broadcasts, spread so seed-derived crash instants land mid-run.
const INJECT_AT: [TimeMs; 3] = [0, 300, 600];

fn config(seed: u64) -> SimConfig {
    SimConfig::new(N)
        .with_seed(seed)
        .with_max_time(3_000)
        .with_network(NetworkModel::reliable_constant(5))
}

/// The server that crashes and the instant it does, derived from the seed
/// so every smoke seed exercises a different (server, boundary) pair.
fn crash_point(seed: u64) -> (usize, TimeMs) {
    (seed as usize % N, 200 + (seed % 5) * 110)
}

/// Runs the workload, applying `durable` to the freshly built simulation
/// (identity for the uncrashed baseline), and fingerprints everything
/// observable — the same format as `cross_seed_determinism`.
fn run_fingerprint(
    seed: u64,
    durable: impl FnOnce(Simulation<Brb<u64>>) -> Simulation<Brb<u64>>,
) -> (Vec<u8>, SimOutcome<Brb<u64>>) {
    let mut sim: Simulation<Brb<u64>> = durable(Simulation::new(config(seed)));
    for (i, at) in INJECT_AT.iter().enumerate() {
        sim.inject(Injection {
            at: *at,
            server: i % N,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(100 + i as u64),
        });
    }
    let outcome = sim.run();
    assert_eq!(
        outcome.deliveries.len(),
        INJECT_AT.len() * N,
        "seed {seed}: every instance delivers everywhere"
    );

    let mut fingerprint = Vec::new();
    for delivery in &outcome.deliveries {
        fingerprint.extend_from_slice(
            format!(
                "d:{}:{}:{}:{:?}\n",
                delivery.at, delivery.server, delivery.label, delivery.indication
            )
            .as_bytes(),
        );
    }
    fingerprint.extend_from_slice(
        format!(
            "net:{}:{}:{}:{}\n",
            outcome.net.messages_sent,
            outcome.net.blocks_sent,
            outcome.net.fwd_sent,
            outcome.net.bytes_sent
        )
        .as_bytes(),
    );
    fingerprint.extend_from_slice(
        format!(
            "crypto:{}:{} clock:{}\n",
            outcome.signatures, outcome.verifications, outcome.finished_at
        )
        .as_bytes(),
    );
    for server in outcome.correct_servers() {
        if let Some(dag) = outcome.dag(server) {
            let mut refs: Vec<_> = dag.refs().copied().collect();
            refs.sort();
            fingerprint.extend_from_slice(format!("dag:{server}:{}\n", refs.len()).as_bytes());
            for r in refs {
                let block = dag.get(&r).expect("listed ref present");
                fingerprint.extend_from_slice(r.to_string().as_bytes());
                fingerprint.push(b':');
                fingerprint.extend_from_slice(
                    dagbft::crypto::sha256(block.wire_bytes())
                        .to_hex()
                        .as_bytes(),
                );
                fingerprint.push(b'\n');
            }
        }
    }
    (fingerprint, outcome)
}

#[test]
fn crash_and_restart_is_invisible_in_the_fingerprint() {
    for seed in SEEDS {
        let (baseline, _) = run_fingerprint(seed, |sim| sim);

        let (server, crash_at) = crash_point(seed);
        let (crashed, outcome) = run_fingerprint(seed, |sim| {
            sim.with_durable_store(server, Box::new(MemoryStore::new()), crash_at)
        });

        let [(at, who, report)] = outcome.recoveries[..] else {
            panic!("seed {seed}: expected exactly one recovery");
        };
        assert_eq!((at, who.index()), (crash_at, server));
        assert!(
            report.journal_blocks > 0,
            "seed {seed}: crash found a journal"
        );
        assert_eq!(
            report.replayed_blocks, report.journal_blocks,
            "seed {seed}: genesis replay covers the whole journal"
        );
        assert_eq!(report.snapshot_covered, 0);
        assert!(outcome.shim(server).store_attached());
        assert!(outcome.shim(server).store_error().is_none());

        assert_eq!(
            baseline, crashed,
            "seed {seed}: crash at t={crash_at} on server {server} leaked into the fingerprint"
        );
    }
}

#[test]
fn journal_backed_snapshot_recovery_is_also_invisible_and_replays_the_suffix() {
    // Same property through the real journal format plus snapshot
    // catch-up: the restarted interpreter starts from the persisted
    // snapshot, replays only the suffix, and still lands on the same
    // bytes.
    for seed in [7, 42] {
        let (baseline, _) = run_fingerprint(seed, |sim| sim);
        let (server, crash_at) = crash_point(seed);
        let (crashed, outcome) = run_fingerprint(seed, |sim| {
            sim.with_durable_store(server, Box::new(MemStore::in_memory()), crash_at)
                .with_durable_snapshots(4)
        });
        let [(_, _, report)] = outcome.recoveries[..] else {
            panic!("seed {seed}: expected exactly one recovery");
        };
        assert!(report.snapshot_covered > 0, "seed {seed}: {report:?}");
        assert!(
            report.replayed_blocks < report.journal_blocks,
            "seed {seed}: snapshot must shrink the replay: {report:?}"
        );
        assert_eq!(
            report.snapshot_covered + report.replayed_blocks,
            report.journal_blocks
        );
        assert_eq!(baseline, crashed, "seed {seed}: snapshot recovery leaked");
    }
}

#[test]
fn file_backed_journal_crash_survives_on_disk() {
    // One seed goes through an actual on-disk journal: the fingerprint
    // still matches, and reopening the directory after the run reads back
    // exactly the recovered server's DAG, with no torn records.
    let seed = 1337;
    let dir = std::env::temp_dir().join(format!("dagbft-crash-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (baseline, _) = run_fingerprint(seed, |sim| sim);
    let (server, crash_at) = crash_point(seed);
    let store = Box::new(FileStore::open_dir(&dir).expect("journal dir opens"));
    let (crashed, outcome) = run_fingerprint(seed, |sim| {
        sim.with_durable_store(server, store, crash_at)
            .with_durable_snapshots(6)
    });
    assert_eq!(baseline, crashed, "file-backed recovery leaked");
    assert_eq!(outcome.recoveries.len(), 1);
    let dag_len = outcome
        .dag(server)
        .expect("recovered server has a DAG")
        .len();
    drop(outcome); // release the journal file handles

    let reopened = FileStore::open_dir(&dir).expect("journal reopens after the run");
    let contents = reopened.contents().expect("journal reads back");
    assert_eq!(
        contents.blocks.len(),
        dag_len,
        "journal holds the whole DAG"
    );
    assert_eq!(contents.truncated_records, 0);
    assert!(contents.snapshot.is_some(), "a snapshot was persisted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chain of `len` blocks by `builder`, each referencing the previous.
fn own_chain(registry: &KeyRegistry, builder: u32, len: u64) -> Vec<Block> {
    let signer = registry.signer(ServerId::new(builder)).unwrap();
    let mut blocks: Vec<Block> = Vec::new();
    for seq in 0..len {
        let preds = blocks
            .last()
            .map(|b| vec![b.block_ref()])
            .unwrap_or_default();
        blocks.push(Block::build(
            ServerId::new(builder),
            SeqNum::new(seq),
            preds,
            vec![],
            &signer,
        ));
    }
    blocks
}

#[test]
fn truncated_peer_tail_is_refetched_via_fwd() {
    let registry = KeyRegistry::generate(N, 9);
    let chain = own_chain(&registry, 0, 5);

    // The journal a crashed observer left behind — minus its tail: the
    // newest peer block (seq 3) was lost with the torn tail.
    let mut store = MemoryStore::new();
    for block in &chain[..4] {
        store.append_block(block).unwrap();
    }
    store.truncate_tail(1);

    let config = ShimConfig::new(ProtocolConfig::for_n(N));
    let (mut shim, report) =
        Shim::<Brb<u64>>::recover_from_store(ServerId::new(3), config, &registry, Box::new(store))
            .expect("a truncated PEER tail is a valid (shorter) journal");
    assert_eq!(report.journal_blocks, 3);
    assert!(!shim.dag().contains(&chain[3].block_ref()));

    // The builder's next block references the lost one: it parks as
    // pending and the recovered server asks for the hole over FWD.
    let commands = shim.on_message(ServerId::new(0), NetMessage::Block(chain[4].clone()), 1_000);
    assert!(
        !shim.dag().contains(&chain[4].block_ref()),
        "parked pending"
    );
    let mut fwd_targets = Vec::new();
    for command in commands.into_iter().chain(shim.on_tick(1_001)) {
        if let NetCommand::SendTo {
            to,
            message: NetMessage::FwdRequest(wanted),
        } = command
        {
            assert_eq!(wanted, chain[3].block_ref(), "asks for exactly the hole");
            fwd_targets.push(to);
        }
    }
    assert_eq!(
        fwd_targets,
        vec![ServerId::new(0)],
        "one FWD, to the builder"
    );

    // The FWD response fills the hole, the pending block cascades in, and
    // both land back in the journal.
    shim.on_message(ServerId::new(0), NetMessage::Block(chain[3].clone()), 1_002);
    assert_eq!(shim.dag().len(), 5, "caught back up past the lost tail");
    assert!(shim.store_error().is_none());
    let store = shim.detach_store().expect("store stays attached");
    assert_eq!(store.contents().unwrap().blocks.len(), 5, "re-journaled");
}

#[test]
fn recovery_refuses_to_resume_below_own_tip() {
    // §7 regression: the journal lost the server's own newest block but
    // the durable tip marker survived. Recovering anyway would rebuild —
    // and re-sign — sequence number 1, equivocating against whatever the
    // rest of the cluster already holds. The shim must refuse.
    let registry = KeyRegistry::generate(N, 9);
    let chain = own_chain(&registry, 3, 2);

    let mut store = MemoryStore::new();
    for block in &chain {
        store.append_block(block).unwrap();
    }
    store.mark_own_tip(SeqNum::new(1)).unwrap();
    store.truncate_tail(1); // the tip marker is deliberately NOT rolled back

    let config = ShimConfig::new(ProtocolConfig::for_n(N));
    let err =
        Shim::<Brb<u64>>::recover_from_store(ServerId::new(3), config, &registry, Box::new(store))
            .expect_err("resuming below the own tip must be refused");
    match err {
        RecoverError::OwnChainTruncated { journal, marker } => {
            assert_eq!(journal, Some(SeqNum::ZERO));
            assert_eq!(marker, SeqNum::new(1));
        }
        other => panic!("expected OwnChainTruncated, got {other:?}"),
    }

    // Control: the intact journal recovers, and the next built block takes
    // seq 2 — sequence numbers are never reused across the restart.
    let mut store = MemoryStore::new();
    for block in &chain {
        store.append_block(block).unwrap();
    }
    store.mark_own_tip(SeqNum::new(1)).unwrap();
    let config = ShimConfig::new(ProtocolConfig::for_n(N));
    let (mut shim, _) =
        Shim::<Brb<u64>>::recover_from_store(ServerId::new(3), config, &registry, Box::new(store))
            .expect("intact journal recovers");
    shim.disseminate(2_000);
    let top = shim
        .dag()
        .iter()
        .filter(|b| b.builder() == ServerId::new(3))
        .map(|b| b.seq())
        .max();
    assert_eq!(top, Some(SeqNum::new(2)), "resumes past the tip, no reuse");
    assert!(shim.dag().equivocations(ServerId::new(3)).is_empty());
}
