//! Cross-seed determinism smoke test: the seeded discrete-event
//! scheduler's core promise is that a `(SimConfig, injections)` pair
//! fully determines the outcome. For several seeds, run the same
//! `theorem_5_1`-style BRB workload twice and assert the outcomes are
//! byte-identical — deliveries, wire metrics, crypto counters, the final
//! clock, and every block's canonical wire bytes all included.
//!
//! The same fingerprint also pins the zero-copy wire path refactor: a run
//! under the incremental admission index is byte-identical to a run under
//! the seed's scan-based engine ("before/after" equivalence at the
//! whole-system level).

use dagbft::prelude::*;

/// Runs the standard lossy BRB workload (three broadcasts across
/// servers) under the given admission engine and signature scheme.
fn run_outcome(seed: u64, admission: AdmissionMode, scheme: SchemeKind) -> SimOutcome<Brb<u64>> {
    let n = 4;
    let values = [7u64, 1000 + seed, 13];
    let expected = values.len() * n;
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_max_time(120_000)
        .with_network(NetworkModel::default().with_drop_rate(0.05))
        .with_admission(admission)
        .with_scheme(scheme)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for (i, value) in values.iter().enumerate() {
        sim.inject(Injection {
            at: 17 * i as u64,
            server: i % n,
            label: Label::new(i as u64),
            request: BrbRequest::Broadcast(*value),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected, "seed {seed} delivered");
    outcome
}

/// Fingerprints everything observable about one run's outcome.
fn run_fingerprint_scheme(seed: u64, admission: AdmissionMode, scheme: SchemeKind) -> Vec<u8> {
    let outcome = run_outcome(seed, admission, scheme);
    let mut fingerprint = Vec::new();
    for delivery in &outcome.deliveries {
        fingerprint.extend_from_slice(
            format!(
                "d:{}:{}:{}:{:?}\n",
                delivery.at, delivery.server, delivery.label, delivery.indication
            )
            .as_bytes(),
        );
    }
    fingerprint.extend_from_slice(
        format!(
            "net:{}:{}:{}:{}\n",
            outcome.net.messages_sent,
            outcome.net.blocks_sent,
            outcome.net.fwd_sent,
            outcome.net.bytes_sent
        )
        .as_bytes(),
    );
    fingerprint.extend_from_slice(
        format!(
            "crypto:{}:{} clock:{}\n",
            outcome.signatures, outcome.verifications, outcome.finished_at
        )
        .as_bytes(),
    );
    // The DAGs themselves must agree too — down to the canonical wire
    // bytes every block caches (which are what the network ever carries).
    for server in outcome.correct_servers() {
        if let Some(dag) = outcome.dag(server) {
            let mut refs: Vec<_> = dag.refs().copied().collect();
            refs.sort();
            fingerprint.extend_from_slice(format!("dag:{server}:{}\n", refs.len()).as_bytes());
            for r in refs {
                let block = dag.get(&r).expect("listed ref present");
                fingerprint.extend_from_slice(r.to_string().as_bytes());
                fingerprint.push(b':');
                fingerprint.extend_from_slice(
                    dagbft::crypto::sha256(block.wire_bytes())
                        .to_hex()
                        .as_bytes(),
                );
                fingerprint.push(b'\n');
            }
        }
    }
    fingerprint
}

fn run_fingerprint_with(seed: u64, admission: AdmissionMode) -> Vec<u8> {
    run_fingerprint_scheme(seed, admission, SchemeKind::Hmac)
}

fn run_fingerprint(seed: u64) -> Vec<u8> {
    run_fingerprint_with(seed, AdmissionMode::Index)
}

#[test]
fn same_seed_twice_is_byte_identical() {
    for seed in [0, 1, 7, 42, 1337] {
        let first = run_fingerprint(seed);
        let second = run_fingerprint(seed);
        assert_eq!(first, second, "seed {seed} not reproducible");
    }
}

#[test]
fn different_seeds_give_different_schedules() {
    // Not a protocol requirement, but if every seed produced identical
    // wire traffic the seeding would plainly be inert — guard the knob.
    let a = run_fingerprint(2);
    let b = run_fingerprint(3);
    assert_ne!(a, b, "seeds 2 and 3 produced identical outcomes");
}

#[test]
fn admission_engines_are_byte_identical_at_system_level() {
    // "Before/after" proof for the admission pipeline: whole lossy
    // simulations — deliveries, wire metrics, crypto counters, and every
    // block's canonical bytes — are identical under the retained scan
    // engine, the wave-batched index, and the parallel pipeline (whose
    // verification worker pool must not leak thread scheduling into any
    // observable).
    for seed in [0, 7, 42] {
        let index = run_fingerprint_with(seed, AdmissionMode::Index);
        let scan = run_fingerprint_with(seed, AdmissionMode::Scan);
        assert_eq!(index, scan, "seed {seed}: index vs scan diverged");
        let parallel = run_fingerprint_with(seed, AdmissionMode::Parallel { workers: 2 });
        assert_eq!(index, parallel, "seed {seed}: index vs parallel diverged");
    }
}

/// The fingerprint up to the per-block content hashes — the subset that
/// must be scheme-independent. `ref(B)` excludes `σ` (Definition 3.1)
/// and `Signature` has one wire size for every scheme, so swapping
/// schemes may only change the signature bytes inside blocks; the
/// schedule, deliveries, wire metrics, and crypto counters must not move.
fn schedule_prefix(fingerprint: &[u8]) -> &[u8] {
    let text = std::str::from_utf8(fingerprint).expect("fingerprint is utf8");
    match text.find("dag:") {
        Some(at) => &fingerprint[..at],
        None => fingerprint,
    }
}

#[test]
fn ed25519_engines_byte_identical_and_schedule_matches_hmac() {
    // Real ed25519 admission is far costlier than the HMAC stand-in, so
    // a seed subset carries this one: all three admission engines agree
    // byte-for-byte under the real scheme, and the whole schedule is
    // identical to the HMAC run — only the signature bytes inside the
    // blocks (hence the block-content hashes) differ.
    for seed in [0, 42] {
        let index = run_fingerprint_scheme(seed, AdmissionMode::Index, SchemeKind::Ed25519);
        let scan = run_fingerprint_scheme(seed, AdmissionMode::Scan, SchemeKind::Ed25519);
        assert_eq!(index, scan, "seed {seed}: ed25519 index vs scan diverged");
        let parallel = run_fingerprint_scheme(
            seed,
            AdmissionMode::Parallel { workers: 2 },
            SchemeKind::Ed25519,
        );
        assert_eq!(
            index, parallel,
            "seed {seed}: ed25519 index vs parallel diverged"
        );

        let hmac = run_fingerprint_with(seed, AdmissionMode::Index);
        assert_eq!(
            schedule_prefix(&index),
            schedule_prefix(&hmac),
            "seed {seed}: swapping the signature scheme moved the schedule"
        );
        assert_ne!(
            index, hmac,
            "seed {seed}: schemes produced identical block bytes"
        );
    }
}

/// Publishes the mode- and scheme-*independent* observables of a
/// finished run into a fresh metrics registry — server 0's gossip
/// admission counters and interpreter footprint, plus the global
/// sign/verify totals — and returns the JSON snapshot. Deliberately
/// excludes wave stats and the batched/burst crypto counters: those are
/// implementation properties of the batched engines (the scan oracle
/// leaves them zero) and are pinned by the fingerprint tests instead.
fn metrics_snapshot(seed: u64, admission: AdmissionMode, scheme: SchemeKind) -> String {
    use dagbft::metrics::{publish, MetricsRegistry};
    let outcome = run_outcome(seed, admission, scheme);
    let shim = outcome.shim(0);
    let registry = MetricsRegistry::new();
    publish::publish_gossip(&registry, shim.gossip().stats());
    publish::publish_footprint(&registry, &shim.footprint());
    registry.set_counter("crypto_signs", outcome.signatures);
    registry.set_counter("crypto_verifies", outcome.verifications);
    registry.set_counter("deliveries", outcome.deliveries.len() as u64);
    registry.set_gauge("finished_at_ms", outcome.finished_at);
    registry.snapshot_json()
}

#[test]
fn metrics_snapshot_is_mode_and_scheme_independent() {
    // The observability layer must not leak the admission engine or the
    // signature scheme: for one seed, the published snapshot of
    // engine-independent counters is byte-identical across all three
    // admission modes and across HMAC vs real ed25519 — so operators can
    // compare metrics between heterogeneous deployments, and a future
    // engine that moves these counters fails loudly here.
    for seed in [0, 42] {
        let base = metrics_snapshot(seed, AdmissionMode::Index, SchemeKind::Hmac);
        assert_eq!(
            base,
            metrics_snapshot(seed, AdmissionMode::Index, SchemeKind::Hmac),
            "seed {seed}: same run, different snapshot bytes"
        );
        assert_eq!(
            base,
            metrics_snapshot(seed, AdmissionMode::Scan, SchemeKind::Hmac),
            "seed {seed}: scan moved the published counters"
        );
        assert_eq!(
            base,
            metrics_snapshot(
                seed,
                AdmissionMode::Parallel { workers: 2 },
                SchemeKind::Hmac
            ),
            "seed {seed}: the worker pool leaked into the snapshot"
        );
        assert_eq!(
            base,
            metrics_snapshot(seed, AdmissionMode::Index, SchemeKind::Ed25519),
            "seed {seed}: the signature scheme leaked into the snapshot"
        );
    }
}

/// CI hook for the determinism smoke step: when `DAGBFT_FP_OUT` is set,
/// write a digest of the full cross-seed, cross-engine fingerprint
/// corpus to that path. CI runs the suite twice — `--test-threads=1` and
/// the default parallel harness — and diffs the two files, so a worker
/// pool (or any future thread) leaking scheduling order into an
/// observable fails the build even if each in-process assertion still
/// holds.
/// `DAGBFT_FP_SCHEME=ed25519` switches the exported corpus to the real
/// scheme (with a smaller seed set — ed25519 runs are costlier); any
/// other value, or none, exports the HMAC corpus.
#[test]
fn fingerprint_digest_export() {
    let Ok(path) = std::env::var("DAGBFT_FP_OUT") else {
        return;
    };
    let (scheme, seeds): (SchemeKind, &[u64]) =
        if std::env::var("DAGBFT_FP_SCHEME").as_deref() == Ok("ed25519") {
            (SchemeKind::Ed25519, &[0, 42])
        } else {
            (SchemeKind::Hmac, &[0, 7, 42])
        };
    let mut corpus = Vec::new();
    for &seed in seeds {
        for (name, mode) in [
            ("index", AdmissionMode::Index),
            ("scan", AdmissionMode::Scan),
            ("parallel", AdmissionMode::Parallel { workers: 2 }),
        ] {
            corpus.extend_from_slice(format!("{seed}:{name}:").as_bytes());
            corpus.extend_from_slice(&run_fingerprint_scheme(seed, mode, scheme));
        }
    }
    let digest = dagbft::crypto::sha256(&corpus).to_hex();
    std::fs::write(&path, format!("{digest}\n")).expect("fingerprint digest written");
}
