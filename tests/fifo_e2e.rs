//! FIFO broadcast over the block DAG: per-sender streams delivered in
//! order at every server, all streams sharing one instance label.

use std::collections::BTreeMap;

use dagbft::prelude::*;
use dagbft::protocols::fifo::{Fifo, FifoDeliver, FifoRequest};

#[test]
fn streams_deliver_in_order_everywhere() {
    let n = 4;
    let per_server = 3usize;
    let expected = n * per_server * n; // every element delivered at every server
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Fifo<u64>> = Simulation::new(config);
    // Every server broadcasts a stream 0..per_server on the same label.
    for server in 0..n {
        for position in 0..per_server {
            sim.inject(Injection {
                at: (position as u64) * 40 + server as u64,
                server,
                label: Label::new(1),
                request: FifoRequest::Broadcast((server * 100 + position) as u64),
            });
        }
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected);

    // Per receiving server, per origin: values arrive in stream order.
    let mut logs: BTreeMap<(usize, u32), Vec<u64>> = BTreeMap::new();
    for delivery in &outcome.deliveries {
        let FifoDeliver { origin, value, .. } = &delivery.indication;
        logs.entry((delivery.server.index(), origin.index() as u32))
            .or_default()
            .push(*value);
    }
    for ((receiver, origin), values) in logs {
        let expected: Vec<u64> = (0..per_server)
            .map(|p| (origin as usize * 100 + p) as u64)
            .collect();
        assert_eq!(
            values, expected,
            "receiver {receiver} got origin {origin}'s stream out of order"
        );
    }
}

#[test]
fn fifo_with_silent_server() {
    let n = 4;
    let expected = 2 * 3; // 2 elements × 3 correct receivers
    let config = SimConfig::new(n)
        .with_max_time(60_000)
        .with_role(3, Role::Silent)
        .with_stop_after_deliveries(expected);
    let mut sim: Simulation<Fifo<u64>> = Simulation::new(config);
    for position in 0..2u64 {
        sim.inject(Injection {
            at: position * 60,
            server: 0,
            label: Label::new(1),
            request: FifoRequest::Broadcast(position),
        });
    }
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), expected);
    for server in outcome.correct_servers() {
        let values: Vec<u64> = outcome
            .deliveries
            .iter()
            .filter(|d| d.server.index() == server)
            .map(|d| d.indication.value)
            .collect();
        assert_eq!(values, vec![0, 1], "server {server}");
    }
}
