//! Lemma 4.3: interpreting the block DAG implements an *authenticated
//! perfect point-to-point link* — reliable delivery, no duplication,
//! authenticity.
//!
//! These tests drive real `Gossip` instances (so DAGs are built exactly as
//! Algorithm 1 prescribes), then check the link properties on independent
//! interpretations, including across *different* servers' DAGs at
//! different stages of convergence (`G ≤ G'`).

use std::collections::BTreeMap;

use dagbft::prelude::*;

/// The probe protocol: every request broadcasts a tagged value; deliveries
/// record (sender, value) pairs exactly as received.
#[derive(Debug, Clone)]
struct Probe {
    config: ProtocolConfig,
    received: Vec<(ServerId, u64)>,
    pending: Vec<(ServerId, u64)>,
}

impl DeterministicProtocol for Probe {
    type Request = u64;
    type Message = u64;
    type Indication = (ServerId, u64);

    fn new(config: &ProtocolConfig, _label: Label, _me: ServerId) -> Self {
        Probe {
            config: *config,
            received: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn on_request(&mut self, request: u64, outbox: &mut Outbox<u64>) {
        outbox.broadcast(&self.config, request);
    }

    fn on_message(&mut self, sender: ServerId, message: u64, _outbox: &mut Outbox<u64>) {
        self.received.push((sender, message));
        self.pending.push((sender, message));
    }

    fn drain_indications(&mut self) -> Vec<(ServerId, u64)> {
        std::mem::take(&mut self.pending)
    }
}

/// A tiny synchronous network of gossip instances: delivers every command
/// immediately, in order.
struct GossipNet {
    gossips: Vec<Gossip>,
}

impl GossipNet {
    fn new(n: usize, seed: u64) -> Self {
        let registry = KeyRegistry::generate(n, seed);
        GossipNet {
            gossips: (0..n)
                .map(|i| {
                    Gossip::new(
                        ServerId::new(i as u32),
                        GossipConfig::for_n(n),
                        registry.signer(ServerId::new(i as u32)).unwrap(),
                        registry.verifier(),
                    )
                })
                .collect(),
        }
    }

    /// Server `origin` disseminates with `requests`; all resulting traffic
    /// is fully delivered before returning.
    fn disseminate(&mut self, origin: usize, requests: Vec<LabeledRequest>) {
        let (_, commands) = self.gossips[origin].disseminate(requests, 0);
        let mut queue: Vec<(usize, NetCommand)> =
            commands.into_iter().map(|c| (origin, c)).collect();
        while let Some((from, command)) = queue.pop() {
            match command {
                NetCommand::Broadcast { message } => {
                    for target in 0..self.gossips.len() {
                        if target != from {
                            let more = self.gossips[target].on_message(
                                ServerId::new(from as u32),
                                message.clone(),
                                0,
                            );
                            queue.extend(more.into_iter().map(|c| (target, c)));
                        }
                    }
                }
                NetCommand::SendTo { to, message } => {
                    let more =
                        self.gossips[to.index()].on_message(ServerId::new(from as u32), message, 0);
                    queue.extend(more.into_iter().map(|c| (to.index(), c)));
                }
            }
        }
    }

    fn dag(&self, index: usize) -> &BlockDag {
        self.gossips[index].dag()
    }
}

/// Runs `rounds` of all-servers-disseminate with a request injected at
/// round 0 by server 0.
fn build_network(n: usize, rounds: usize, value: u64) -> GossipNet {
    let mut net = GossipNet::new(n, 11);
    for round in 0..rounds {
        for server in 0..n {
            let requests = if round == 0 && server == 0 {
                vec![LabeledRequest::encode(Label::new(1), &value)]
            } else {
                vec![]
            };
            net.disseminate(server, requests);
        }
    }
    net
}

#[test]
fn reliable_delivery_lemma_4_3_1() {
    // s0 broadcasts 7 on ℓ1. In the interpretation, every message m sent
    // by instance s_i to s_j is eventually received: with enough rounds,
    // each simulated server receives n copies (one per broadcaster after
    // echo amplification in Probe there is none — Probe only sends on
    // request, so exactly the n deliveries of s0's broadcast).
    let n = 4;
    let net = build_network(n, 3, 7);
    for observer in 0..n {
        let mut interpreter: Interpreter<Probe> = Interpreter::new(ProtocolConfig::for_n(n));
        interpreter.step(net.dag(observer));
        let mut received: BTreeMap<usize, Vec<(ServerId, u64)>> = BTreeMap::new();
        for indication in interpreter.drain_indications() {
            received
                .entry(indication.server.index())
                .or_default()
                .push(indication.indication);
        }
        // Every simulated server received s0's message exactly once.
        for server in 0..n {
            assert_eq!(
                received.get(&server).map(Vec::as_slice),
                Some(&[(ServerId::new(0), 7)][..]),
                "observer {observer}, simulated server {server}"
            );
        }
    }
}

#[test]
fn no_duplication_lemma_4_3_2() {
    // Even after many more rounds (many more blocks referencing the same
    // history), no message is received twice by any correct simulated
    // server.
    let n = 4;
    let net = build_network(n, 6, 9);
    let mut interpreter: Interpreter<Probe> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter.step(net.dag(0));
    let mut counts: BTreeMap<(usize, ServerId, u64), usize> = BTreeMap::new();
    for indication in interpreter.drain_indications() {
        *counts
            .entry((
                indication.server.index(),
                indication.indication.0,
                indication.indication.1,
            ))
            .or_default() += 1;
    }
    for ((receiver, sender, value), count) in counts {
        assert_eq!(
            count, 1,
            "server {receiver} received {value} from {sender} {count} times"
        );
    }
}

#[test]
fn authenticity_lemma_4_3_3() {
    // Every received message's claimed sender actually sent it: with the
    // Probe protocol, only s0 issued a request, so every received message
    // must claim sender s0 — and the chain of custody is the signature on
    // s0's block.
    let n = 4;
    let net = build_network(n, 3, 5);
    let mut interpreter: Interpreter<Probe> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter.step(net.dag(1));
    let indications = interpreter.drain_indications();
    assert!(!indications.is_empty());
    for indication in indications {
        assert_eq!(
            indication.indication.0,
            ServerId::new(0),
            "message claims a sender that never sent"
        );
    }
}

#[test]
fn agreement_across_observers_lemma_4_2() {
    // Lemma 4.2: interpretation state is a function of the DAG alone. Two
    // observers with converged DAGs agree on every block's buffers.
    let n = 4;
    let net = build_network(n, 4, 3);
    let mut interpreters: Vec<Interpreter<Probe>> = (0..2)
        .map(|_| Interpreter::new(ProtocolConfig::for_n(n)))
        .collect();
    interpreters[0].step(net.dag(0));
    interpreters[1].step(net.dag(2));

    // Both DAGs contain the same blocks after full synchronous exchange.
    let refs0: Vec<BlockRef> = net.dag(0).refs().copied().collect();
    for r in &refs0 {
        assert!(net.dag(2).contains(r));
        let state0 = interpreters[0].state(r).unwrap();
        let state1 = interpreters[1].state(r).unwrap();
        let outs0: Vec<_> = state0.out_messages(Label::new(1)).collect();
        let outs1: Vec<_> = state1.out_messages(Label::new(1)).collect();
        assert_eq!(outs0, outs1, "out buffers diverged at {r}");
        let ins0: Vec<_> = state0.in_messages(Label::new(1)).collect();
        let ins1: Vec<_> = state1.in_messages(Label::new(1)).collect();
        assert_eq!(ins0, ins1, "in buffers diverged at {r}");
    }
}

#[test]
fn extension_monotonicity_g_le_g_prime() {
    // Lemma A.16 flavour: everything sent in the interpretation of G is
    // sent in the interpretation of any G' ≥ G.
    let n = 4;
    // Stage 1: two rounds only.
    let short = build_network(n, 2, 8);
    // Stage 2: same seed/workload, more rounds — a strict extension.
    let long = build_network(n, 5, 8);
    assert!(short.dag(0).le(long.dag(0)), "G ≤ G'");

    let mut interpreter_short: Interpreter<Probe> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter_short.step(short.dag(0));
    let mut interpreter_long: Interpreter<Probe> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter_long.step(long.dag(0));

    for r in short.dag(0).refs() {
        let state_short = interpreter_short.state(r).unwrap();
        let state_long = interpreter_long.state(r).unwrap();
        let outs_short: Vec<_> = state_short.out_messages(Label::new(1)).collect();
        let outs_long: Vec<_> = state_long.out_messages(Label::new(1)).collect();
        assert_eq!(outs_short, outs_long);
    }
}

#[test]
fn joint_dag_lemma_3_7() {
    // Two servers gossip, each also holding private blocks the other has
    // not seen (we cut the network between them by only disseminating to
    // subsets). After exchanging everything, each holds a DAG ≥ the union.
    let n = 2;
    let mut net = GossipNet::new(n, 13);
    // Both disseminate twice in full view.
    for _ in 0..2 {
        net.disseminate(0, vec![]);
        net.disseminate(1, vec![]);
    }
    let dag0 = net.dag(0).clone();
    let dag1 = net.dag(1).clone();
    let union = dag0.union(&dag1);
    // Continued gossip only grows the DAGs above the union.
    net.disseminate(0, vec![]);
    net.disseminate(1, vec![]);
    assert!(union.le(net.dag(0)), "G'_0 ≥ G_0 ∪ G_1");
    assert!(union.le(net.dag(1)), "G'_1 ≥ G_0 ∪ G_1");
    assert!(net.dag(0).check_invariants());
}
