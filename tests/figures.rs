//! Executable reproductions of the paper's figures (experiments E1–E3).
//!
//! * Figure 2 — a block DAG with three blocks.
//! * Figure 3 — the same DAG plus an equivocating block.
//! * Figure 4 — the `Ms[in/out, ℓ1]` buffers of BRB `broadcast(42)`.

use std::collections::BTreeSet;

use dagbft::prelude::*;

fn signers(n: usize, seed: u64) -> (KeyRegistry, Vec<dagbft::crypto::Signer>) {
    let registry = KeyRegistry::generate(n, seed);
    let signers = (0..n)
        .map(|i| registry.signer(ServerId::new(i as u32)).unwrap())
        .collect();
    (registry, signers)
}

/// Figure 2: `B1 = ⟨s1, k0⟩`, `B2 = ⟨s2, k0⟩`,
/// `B3 = ⟨s1, k1, preds = [B1, B2]⟩`.
fn figure_2() -> (BlockDag, Block, Block, Block) {
    let (_, signers) = signers(2, 1);
    let b1 = Block::build(ServerId::new(0), SeqNum::ZERO, vec![], vec![], &signers[0]);
    let b2 = Block::build(ServerId::new(1), SeqNum::ZERO, vec![], vec![], &signers[1]);
    let b3 = Block::build(
        ServerId::new(0),
        SeqNum::new(1),
        vec![b1.block_ref(), b2.block_ref()],
        vec![],
        &signers[0],
    );
    let mut dag = BlockDag::new();
    dag.insert(b1.clone()).unwrap();
    dag.insert(b2.clone()).unwrap();
    dag.insert(b3.clone()).unwrap();
    (dag, b1, b2, b3)
}

#[test]
fn fig2_structure_matches_paper() {
    let (dag, b1, b2, b3) = figure_2();
    assert_eq!(dag.len(), 3);
    // parent(B3) = B1 (same builder, k−1).
    assert_eq!(
        b3.parent_via(|r| dag.meta(r)).unwrap(),
        Some(b1.block_ref())
    );
    // Happened-before: B1 ⇀ B3 and B2 ⇀ B3, but B1 and B2 are concurrent.
    assert!(dag.reaches(&b1.block_ref(), &b3.block_ref()));
    assert!(dag.reaches(&b2.block_ref(), &b3.block_ref()));
    assert!(!dag.reaches(&b1.block_ref(), &b2.block_ref()));
    assert!(!dag.reaches(&b2.block_ref(), &b1.block_ref()));
    assert!(dag.check_invariants());
}

#[test]
fn fig3_equivocation_two_valid_conflicting_blocks() {
    let (mut dag, b1, b2, b3) = figure_2();
    let (registry, signers) = signers(2, 1);
    // B4: same builder and sequence number as B3, different content.
    let b4 = Block::build(
        ServerId::new(0),
        SeqNum::new(1),
        vec![b1.block_ref(), b2.block_ref()],
        vec![LabeledRequest::encode(Label::new(1), &1u8)],
        &signers[0],
    );
    assert_ne!(b3.block_ref(), b4.block_ref());
    // Both carry valid signatures: equivocation is *valid* (Example 3.5).
    assert!(b3.verify_signature(&registry.verifier()));
    assert!(b4.verify_signature(&registry.verifier()));
    dag.insert(b4.clone()).unwrap();

    let equivocations = dag.equivocations(ServerId::new(0));
    assert_eq!(equivocations.len(), 1);
    let (seq, blocks) = &equivocations[0];
    assert_eq!(*seq, SeqNum::new(1));
    let expected: BTreeSet<BlockRef> = [b3.block_ref(), b4.block_ref()].into_iter().collect();
    let actual: BTreeSet<BlockRef> = blocks.iter().copied().collect();
    assert_eq!(actual, expected);
}

#[test]
fn fig3_successors_of_equivocating_blocks_stay_split() {
    // Definition 3.3 (ii): s1 cannot later "join" the two branches — a
    // block referencing both B3 and B4 has two distinct parents and is
    // invalid.
    let (mut dag, b1, b2, b3) = figure_2();
    let (_, signers) = signers(2, 1);
    let b4 = Block::build(
        ServerId::new(0),
        SeqNum::new(1),
        vec![b1.block_ref(), b2.block_ref()],
        vec![LabeledRequest::encode(Label::new(1), &1u8)],
        &signers[0],
    );
    dag.insert(b4.clone()).unwrap();
    let joiner = Block::build(
        ServerId::new(0),
        SeqNum::new(2),
        vec![b3.block_ref(), b4.block_ref()],
        vec![],
        &signers[0],
    );
    let result = joiner.parent_via(|r| dag.meta(r));
    assert!(
        matches!(
            result,
            Err(dagbft::dag::InvalidBlockError::MultipleParents { .. })
        ),
        "joining split chains must be invalid"
    );
}

/// Builds the Figure 4 scenario: 4 servers, fully-connected rounds,
/// `(ℓ1, broadcast(42))` in server 0's genesis block. Returns the DAG and
/// the blocks by `[round][server]`.
fn figure_4(rounds: u64) -> (BlockDag, Vec<Vec<Block>>) {
    let n = 4;
    let (_, signers) = signers(n, 4);
    let mut dag = BlockDag::new();
    let mut layers: Vec<Vec<Block>> = Vec::new();
    for round in 0..rounds {
        let preds: Vec<BlockRef> = layers
            .last()
            .map(|layer| layer.iter().map(Block::block_ref).collect())
            .unwrap_or_default();
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = if round == 0 && index == 0 {
                vec![LabeledRequest::encode(
                    Label::new(1),
                    &BrbRequest::Broadcast(42u64),
                )]
            } else {
                vec![]
            };
            let block = Block::build(
                ServerId::new(index as u32),
                SeqNum::new(round),
                preds.clone(),
                requests,
                signer,
            );
            dag.insert(block.clone()).unwrap();
            layer.push(block);
        }
        layers.push(layer);
    }
    (dag, layers)
}

fn in_senders(
    interpreter: &Interpreter<Brb<u64>>,
    block: &Block,
    expect_echo: bool,
) -> BTreeSet<usize> {
    interpreter
        .state(&block.block_ref())
        .unwrap()
        .in_messages(Label::new(1))
        .filter(|e| matches!(e.message, BrbMessage::Echo(_)) == expect_echo)
        .map(|e| e.sender.index())
        .collect()
}

fn out_kinds(interpreter: &Interpreter<Brb<u64>>, block: &Block) -> (usize, usize) {
    let state = interpreter.state(&block.block_ref()).unwrap();
    let echoes = state
        .out_messages(Label::new(1))
        .filter(|e| matches!(e.message, BrbMessage::Echo(_)))
        .count();
    let readies = state
        .out_messages(Label::new(1))
        .filter(|e| matches!(e.message, BrbMessage::Ready(_)))
        .count();
    (echoes, readies)
}

#[test]
fn fig4_buffers_round_by_round() {
    let (dag, layers) = figure_4(4);
    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(ProtocolConfig::for_n(4));
    interpreter.step(&dag);

    // Round 0: B1 (s0) has out = ECHO 42 to {s0..s3}; in = ∅. Others: ∅/∅.
    let b1 = &layers[0][0];
    assert_eq!(out_kinds(&interpreter, b1), (4, 0));
    assert!(in_senders(&interpreter, b1, true).is_empty());
    for block in &layers[0][1..] {
        assert_eq!(out_kinds(&interpreter, block), (0, 0));
    }

    // Round 1: every block has in = ECHO 42 from {s0}; amplifiers (s1–s3)
    // have out = ECHO 42 to all; s0 already echoed, so out = ∅
    // (the figure's "ECHO 42 from {s1}" wave).
    for (index, block) in layers[1].iter().enumerate() {
        assert_eq!(
            in_senders(&interpreter, block, true),
            [0].into_iter().collect(),
            "round 1 in-buffer of s{index}"
        );
        let expected = if index == 0 { (0, 0) } else { (4, 0) };
        assert_eq!(out_kinds(&interpreter, block), expected, "s{index}");
    }

    // Round 2: in = ECHO 42 from {s1, s2, s3} (the amplifiers) — the 2f+1
    // quorum — so out = READY 42 to all (the figure's READY wave).
    for (index, block) in layers[2].iter().enumerate() {
        assert_eq!(
            in_senders(&interpreter, block, true),
            [1, 2, 3].into_iter().collect(),
            "round 2 in-buffer of s{index}"
        );
        assert_eq!(out_kinds(&interpreter, block), (0, 4), "s{index}");
    }

    // Round 3: in = READY 42 from everyone ⇒ 2f+1 READYs ⇒ deliver(42) at
    // every simulated server.
    for (index, block) in layers[3].iter().enumerate() {
        assert_eq!(
            in_senders(&interpreter, block, false),
            [0, 1, 2, 3].into_iter().collect(),
            "round 3 in-buffer of s{index}"
        );
    }
    let mut delivered: Vec<(usize, u64)> = interpreter
        .drain_indications()
        .into_iter()
        .map(|i| {
            let BrbIndication::Deliver(v) = i.indication;
            (i.server.index(), v)
        })
        .collect();
    delivered.sort();
    assert_eq!(delivered, vec![(0, 42), (1, 42), (2, 42), (3, 42)]);
}

#[test]
fn fig4_no_message_ever_sent() {
    // The crucial claim: the 32 materialized ECHO/READY messages exist
    // only inside the interpretation. The DAG's 16 blocks are the only
    // network objects.
    let (dag, _) = figure_4(4);
    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(ProtocolConfig::for_n(4));
    interpreter.step(&dag);
    let stats = interpreter.stats();
    assert_eq!(stats.blocks_interpreted, 16);
    assert_eq!(stats.messages_materialized, 32);
    assert_eq!(stats.requests_processed, 1);
}

#[test]
fn fig4_long_tail_shares_interpreter_state() {
    // Extend Figure 4 past the delivery round: BRB goes quiescent after
    // round 3, so every later block shares its whole instance map with its
    // parent (copy-on-write), and the interpreter's resident state stops
    // growing even as blocks keep flowing.
    let (dag, layers) = figure_4(8);
    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(ProtocolConfig::for_n(4));
    interpreter.step(&dag);

    for round in 5..8 {
        for (server, block) in layers[round].iter().enumerate() {
            let state = interpreter.state(&block.block_ref()).unwrap();
            let parent = interpreter
                .state(&layers[round - 1][server].block_ref())
                .unwrap();
            assert!(
                state.shares_instances_with(parent),
                "round {round} block of s{server} must share its parent's map"
            );
        }
    }

    let footprint = interpreter.footprint();
    assert_eq!(footprint.blocks, 32);
    assert!(
        footprint.unique_instances < footprint.instances,
        "sharing must be visible: {} unique of {} total",
        footprint.unique_instances,
        footprint.instances
    );
    // Compaction drops exactly the in-envelopes, once.
    let dropped = interpreter.compact();
    assert_eq!(dropped, footprint.in_envelopes);
    assert_eq!(interpreter.compact(), 0);
    assert_eq!(interpreter.footprint().in_envelopes, 0);
    assert_eq!(
        interpreter.footprint().out_envelopes,
        footprint.out_envelopes
    );
}

#[test]
fn fig4_more_requests_materialize_on_same_blocks() {
    // §5: "B1.rs may hold more requests such as broadcast(21) for ℓ2" —
    // additional instances cost zero additional blocks.
    let n = 4;
    let (_, signers) = signers(n, 4);
    let mut dag = BlockDag::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..4u64 {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = if round == 0 && index == 0 {
                vec![
                    LabeledRequest::encode(Label::new(1), &BrbRequest::Broadcast(42u64)),
                    LabeledRequest::encode(Label::new(2), &BrbRequest::Broadcast(21u64)),
                ]
            } else if round == 0 && index == 2 {
                // §5: "also B3 holds such requests", e.g. ℓ3.
                vec![LabeledRequest::encode(
                    Label::new(3),
                    &BrbRequest::Broadcast(25u64),
                )]
            } else {
                vec![]
            };
            let block = Block::build(
                ServerId::new(index as u32),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            dag.insert(block.clone()).unwrap();
            layer.push(block.block_ref());
        }
        prev = layer;
    }

    let mut interpreter: Interpreter<Brb<u64>> = Interpreter::new(ProtocolConfig::for_n(n));
    interpreter.step(&dag);
    let mut per_label: std::collections::BTreeMap<Label, BTreeSet<usize>> = Default::default();
    for indication in interpreter.drain_indications() {
        per_label
            .entry(indication.label)
            .or_default()
            .insert(indication.server.index());
    }
    // All three instances delivered at all four servers — same 16 blocks.
    for label in [1, 2, 3] {
        assert_eq!(
            per_label[&Label::new(label)].len(),
            4,
            "instance ℓ{label} delivered everywhere"
        );
    }
    assert_eq!(dag.len(), 16);
}
