//! Lemma 3.6/3.7: eventual convergence of correct servers' DAGs — under
//! clean networks, loss, and healed partitions (experiment E10's
//! functional side) — plus the gossip-burst admission regression: the
//! batched reverse-dependency index and the parallel pipeline must
//! promote exactly what the seed's scan-based engine promotes, in the
//! same deterministic order, on hostile out-of-order and equivocating
//! deliveries.

use dagbft::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs a sim and returns per-correct-server DAG block counts plus the
/// outcome.
fn converged_sizes(outcome: &SimOutcome<Brb<u64>>) -> Vec<usize> {
    outcome
        .correct_servers()
        .into_iter()
        .map(|i| outcome.shim(i).dag().len())
        .collect()
}

/// Checks all correct servers' DAGs agree up to in-flight blocks: the
/// symmetric difference between any two is bounded by what can still be on
/// the wire at the cutoff instant (a couple of blocks per server).
fn dags_agree(outcome: &SimOutcome<Brb<u64>>, n: usize) -> bool {
    let correct = outcome.correct_servers();
    let sets: Vec<std::collections::BTreeSet<BlockRef>> = correct
        .iter()
        .map(|i| outcome.shim(*i).dag().refs().copied().collect())
        .collect();
    sets.windows(2).all(|pair| {
        let diff = pair[0].symmetric_difference(&pair[1]).count();
        diff <= 2 * n
    })
}

#[test]
fn clean_network_converges() {
    let config = SimConfig::new(4).with_max_time(2_000);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    let sizes = converged_sizes(&outcome);
    // Within one dissemination interval of each other.
    let min = sizes.iter().min().unwrap();
    let max = sizes.iter().max().unwrap();
    assert!(max - min <= 4, "sizes {sizes:?}");
    assert!(dags_agree(&outcome, 4));
}

#[test]
fn lossy_network_converges_via_fwd() {
    for drop_rate in [0.1, 0.3, 0.5] {
        let config = SimConfig::new(4)
            .with_max_time(30_000)
            .with_network(NetworkModel::default().with_drop_rate(drop_rate))
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(Injection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(9),
        });
        let outcome = sim.run();
        assert_eq!(
            outcome.deliveries.len(),
            4,
            "drop rate {drop_rate}: delivery failed"
        );
        assert!(outcome.net.messages_dropped > 0);
        if drop_rate >= 0.3 {
            assert!(
                outcome.net.fwd_sent > 0,
                "drop rate {drop_rate}: recovery should need FWDs"
            );
        }
    }
}

#[test]
fn partition_heals_and_converges() {
    // Split {0,1} | {2,3} for 2 seconds, then heal. Liveness resumes:
    // a broadcast injected *during* the partition delivers after healing.
    let partition = Partition {
        a: [0, 1].into_iter().collect(),
        b: [2, 3].into_iter().collect(),
        from: 0,
        until: 2_000,
    };
    let config = SimConfig::new(4)
        .with_max_time(60_000)
        .with_network(NetworkModel::default().with_partition(partition))
        .with_stop_after_deliveries(4);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 100,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(5),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 4, "post-heal delivery");
    // Deliveries on the far side happen only after the heal.
    for delivery in &outcome.deliveries {
        if delivery.server.index() >= 2 {
            assert!(
                delivery.at >= 2_000,
                "server {} delivered during partition",
                delivery.server
            );
        }
    }
}

#[test]
fn all_dags_verify_invariants_after_chaos() {
    let config = SimConfig::new(7)
        .with_max_time(10_000)
        .with_network(NetworkModel::default().with_drop_rate(0.2))
        .with_role(5, Role::Equivocate { at_seq: 2 })
        .with_role(6, Role::Silent);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..5 {
        sim.inject(Injection {
            at: i * 100,
            server: (i % 5) as usize,
            label: Label::new(i),
            request: BrbRequest::Broadcast(i),
        });
    }
    let outcome = sim.run();
    for index in outcome.correct_servers() {
        assert!(
            outcome.shim(index).dag().check_invariants(),
            "server {index} DAG invariants"
        );
    }
}

/// Builds a hostile block soup: three builders × `rounds` rounds, each
/// block referencing the whole previous round, plus an equivocation pair
/// (builder 3, k = 0) and a child committing to both halves of it.
fn hostile_soup(rounds: u64) -> (KeyRegistry, Vec<Block>) {
    let registry = KeyRegistry::generate(4, 23);
    let signers: Vec<_> = (1..4)
        .map(|i| registry.signer(ServerId::new(i)).unwrap())
        .collect();
    let mut blocks = Vec::new();
    let mut prev: Vec<BlockRef> = Vec::new();
    for round in 0..rounds {
        let mut layer = Vec::new();
        for (index, signer) in signers.iter().enumerate() {
            let requests = vec![LabeledRequest::encode(
                Label::new(index as u64),
                &(round * 10 + index as u64),
            )];
            let block = Block::build(
                signer.id(),
                SeqNum::new(round),
                prev.clone(),
                requests,
                signer,
            );
            layer.push(block.block_ref());
            blocks.push(block);
        }
        prev = layer;
    }
    // Equivocation: a second k=0 block by builder 3 with different content,
    // and a k=1 child referencing *both* — permanently invalid
    // (MultipleParents), so its own children can never promote either.
    let signer3 = registry.signer(ServerId::new(3)).unwrap();
    let equivocation = Block::build(
        ServerId::new(3),
        SeqNum::ZERO,
        vec![],
        vec![LabeledRequest::encode(Label::new(99), &1u8)],
        &signer3,
    );
    let first_k0 = blocks[2].block_ref();
    let two_parents = Block::build(
        ServerId::new(3),
        SeqNum::new(1),
        vec![first_k0, equivocation.block_ref()],
        vec![],
        &signer3,
    );
    let orphan_child = Block::build(
        ServerId::new(3),
        SeqNum::new(2),
        vec![two_parents.block_ref()],
        vec![],
        &signer3,
    );
    blocks.push(equivocation);
    blocks.push(two_parents);
    blocks.push(orphan_child);
    (registry, blocks)
}

/// Replays `schedule` into a fresh receiver under `mode` and fingerprints
/// everything admission-observable: per-delivery commands, DAG content in
/// promotion order, pending/rejected sets, stats, and the pred list of the
/// next own block (which is hashed and signed — determinism boundary).
fn admission_fingerprint(
    registry: &KeyRegistry,
    schedule: &[Block],
    mode: AdmissionMode,
) -> (
    Vec<NetCommand>,
    Vec<BlockRef>,
    usize,
    usize,
    GossipStats,
    Block,
) {
    let mut receiver = Gossip::new(
        ServerId::new(0),
        GossipConfig::for_n(4).with_admission(mode),
        registry.signer(ServerId::new(0)).unwrap(),
        registry.verifier(),
    );
    let mut commands = Vec::new();
    for (t, block) in schedule.iter().enumerate() {
        commands.extend(receiver.on_block(block.clone(), t as u64));
    }
    let order: Vec<BlockRef> = receiver.dag().iter().map(|b| b.block_ref()).collect();
    let pending = receiver.pending_len();
    let rejected = receiver.rejected().len();
    let stats = *receiver.stats();
    let (own, _) = receiver.disseminate(vec![], 10_000);
    (commands, order, pending, rejected, stats, own)
}

#[test]
fn gossip_burst_admission_matches_scan_engine() {
    let (registry, blocks) = hostile_soup(6);
    let reversed: Vec<Block> = blocks.iter().rev().cloned().collect();
    let mut schedules = vec![("reverse", reversed)];
    for seed in [1u64, 7, 42] {
        let mut shuffled = blocks.clone();
        shuffled.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        schedules.push(("shuffled", shuffled));
    }
    for (name, schedule) in schedules {
        let index = admission_fingerprint(&registry, &schedule, AdmissionMode::Index);
        for (engine, mode) in [
            ("scan", AdmissionMode::Scan),
            ("parallel", AdmissionMode::Parallel { workers: 3 }),
        ] {
            let other = admission_fingerprint(&registry, &schedule, mode);
            assert_eq!(
                index.0, other.0,
                "{name}/{engine}: FWD/command traffic diverged"
            );
            assert_eq!(
                index.1, other.1,
                "{name}/{engine}: promotion order diverged"
            );
            assert_eq!(index.2, other.2, "{name}/{engine}: pending buffer diverged");
            assert_eq!(index.3, other.3, "{name}/{engine}: rejections diverged");
            assert_eq!(index.4, other.4, "{name}/{engine}: stats diverged");
            // The sealed next block — whose bytes are hashed and signed —
            // is bit-identical, so the engines are indistinguishable on
            // the wire.
            assert_eq!(
                index.5.wire_bytes(),
                other.5.wire_bytes(),
                "{name}/{engine}: own block bytes diverged"
            );
        }
        // The permanently-invalid chain stays buffered/rejected, never
        // promoted, under every engine.
        assert_eq!(index.3, 1, "{name}: the two-parent block is rejected");
        assert_eq!(index.2, 1, "{name}: its child stays pending forever");
    }
}

#[test]
fn sequence_numbers_form_chains_per_correct_server() {
    let config = SimConfig::new(4).with_max_time(3_000);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    let dag = outcome.shim(0).dag();
    for server in 0..4u32 {
        let server = ServerId::new(server);
        let Some(height) = dag.height_of(server) else {
            continue;
        };
        // Every sequence number 0..=height is present exactly once.
        for k in 0..=height.value() {
            assert_eq!(
                dag.blocks_at(server, SeqNum::new(k)).len(),
                1,
                "{server} at k{k}"
            );
        }
    }
}
