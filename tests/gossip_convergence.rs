//! Lemma 3.6/3.7: eventual convergence of correct servers' DAGs — under
//! clean networks, loss, and healed partitions (experiment E10's
//! functional side).

use dagbft::prelude::*;

/// Runs a sim and returns per-correct-server DAG block counts plus the
/// outcome.
fn converged_sizes(outcome: &SimOutcome<Brb<u64>>) -> Vec<usize> {
    outcome
        .correct_servers()
        .into_iter()
        .map(|i| outcome.shim(i).dag().len())
        .collect()
}

/// Checks all correct servers' DAGs agree up to in-flight blocks: the
/// symmetric difference between any two is bounded by what can still be on
/// the wire at the cutoff instant (a couple of blocks per server).
fn dags_agree(outcome: &SimOutcome<Brb<u64>>, n: usize) -> bool {
    let correct = outcome.correct_servers();
    let sets: Vec<std::collections::BTreeSet<BlockRef>> = correct
        .iter()
        .map(|i| outcome.shim(*i).dag().refs().copied().collect())
        .collect();
    sets.windows(2).all(|pair| {
        let diff = pair[0].symmetric_difference(&pair[1]).count();
        diff <= 2 * n
    })
}

#[test]
fn clean_network_converges() {
    let config = SimConfig::new(4).with_max_time(2_000);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    let sizes = converged_sizes(&outcome);
    // Within one dissemination interval of each other.
    let min = sizes.iter().min().unwrap();
    let max = sizes.iter().max().unwrap();
    assert!(max - min <= 4, "sizes {sizes:?}");
    assert!(dags_agree(&outcome, 4));
}

#[test]
fn lossy_network_converges_via_fwd() {
    for drop_rate in [0.1, 0.3, 0.5] {
        let config = SimConfig::new(4)
            .with_max_time(30_000)
            .with_network(NetworkModel::default().with_drop_rate(drop_rate))
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
        sim.inject(Injection {
            at: 0,
            server: 0,
            label: Label::new(1),
            request: BrbRequest::Broadcast(9),
        });
        let outcome = sim.run();
        assert_eq!(
            outcome.deliveries.len(),
            4,
            "drop rate {drop_rate}: delivery failed"
        );
        assert!(outcome.net.messages_dropped > 0);
        if drop_rate >= 0.3 {
            assert!(
                outcome.net.fwd_sent > 0,
                "drop rate {drop_rate}: recovery should need FWDs"
            );
        }
    }
}

#[test]
fn partition_heals_and_converges() {
    // Split {0,1} | {2,3} for 2 seconds, then heal. Liveness resumes:
    // a broadcast injected *during* the partition delivers after healing.
    let partition = Partition {
        a: [0, 1].into_iter().collect(),
        b: [2, 3].into_iter().collect(),
        from: 0,
        until: 2_000,
    };
    let config = SimConfig::new(4)
        .with_max_time(60_000)
        .with_network(NetworkModel::default().with_partition(partition))
        .with_stop_after_deliveries(4);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 100,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(5),
    });
    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), 4, "post-heal delivery");
    // Deliveries on the far side happen only after the heal.
    for delivery in &outcome.deliveries {
        if delivery.server.index() >= 2 {
            assert!(
                delivery.at >= 2_000,
                "server {} delivered during partition",
                delivery.server
            );
        }
    }
}

#[test]
fn all_dags_verify_invariants_after_chaos() {
    let config = SimConfig::new(7)
        .with_max_time(10_000)
        .with_network(NetworkModel::default().with_drop_rate(0.2))
        .with_role(5, Role::Equivocate { at_seq: 2 })
        .with_role(6, Role::Silent);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    for i in 0..5 {
        sim.inject(Injection {
            at: i * 100,
            server: (i % 5) as usize,
            label: Label::new(i),
            request: BrbRequest::Broadcast(i),
        });
    }
    let outcome = sim.run();
    for index in outcome.correct_servers() {
        assert!(
            outcome.shim(index).dag().check_invariants(),
            "server {index} DAG invariants"
        );
    }
}

#[test]
fn sequence_numbers_form_chains_per_correct_server() {
    let config = SimConfig::new(4).with_max_time(3_000);
    let mut sim: Simulation<Brb<u64>> = Simulation::new(config);
    sim.inject(Injection {
        at: 0,
        server: 0,
        label: Label::new(1),
        request: BrbRequest::Broadcast(1),
    });
    let outcome = sim.run();
    let dag = outcome.shim(0).dag();
    for server in 0..4u32 {
        let server = ServerId::new(server);
        let Some(height) = dag.height_of(server) else {
            continue;
        };
        // Every sequence number 0..=height is present exactly once.
        for k in 0..=height.value() {
            assert_eq!(
                dag.blocks_at(server, SeqNum::new(k)).len(),
                1,
                "{server} at k{k}"
            );
        }
    }
}
