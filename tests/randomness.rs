//! The §7 de-randomization extension, end to end: coin flips drawn at the
//! user layer travel inside blocks; the deterministic beacon protocol
//! yields the same output at every server.

use std::collections::BTreeSet;

use dagbft::prelude::*;
use dagbft::protocols::beacon::{Beacon, BeaconOutput, BeaconRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn beacon_agrees_across_all_servers() {
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(30_000)
        .with_stop_after_deliveries(n);
    let mut sim: Simulation<Beacon> = Simulation::new(config);

    // The coins are drawn *outside* the protocol — here, from a seeded RNG
    // standing in for each server's local entropy — and inscribed in
    // blocks via the request path (the paper's §7 recipe).
    let mut entropy = StdRng::seed_from_u64(999);
    for server in 0..n {
        sim.inject(Injection {
            at: (server as u64) * 7,
            server,
            label: Label::new(1),
            request: BeaconRequest::Contribute(entropy.gen()),
        });
    }

    let outcome = sim.run();
    assert_eq!(outcome.deliveries.len(), n, "beacon fired everywhere");
    let outputs: BTreeSet<&BeaconOutput> =
        outcome.deliveries.iter().map(|d| &d.indication).collect();
    assert_eq!(outputs.len(), 1, "all servers agree on the beacon output");
    let output = outputs.into_iter().next().unwrap();
    assert!(output.winner.index() < n);
}

#[test]
fn beacon_stalls_with_silent_contributor_liveness_caveat() {
    // The documented liveness caveat: the beacon needs all n coins; a
    // silent server stalls the round (no output — but also no divergence).
    let n = 4;
    let config = SimConfig::new(n)
        .with_max_time(5_000)
        .with_role(3, Role::Silent);
    let mut sim: Simulation<Beacon> = Simulation::new(config);
    for server in 0..3 {
        sim.inject(Injection {
            at: 0,
            server,
            label: Label::new(1),
            request: BeaconRequest::Contribute(server as u64),
        });
    }
    let outcome = sim.run();
    assert!(outcome.deliveries.is_empty(), "no quorum, no beacon");
}

#[test]
fn beacon_reproducible_given_same_coins() {
    let run = |coins: [u64; 4]| {
        let config = SimConfig::new(4)
            .with_max_time(30_000)
            .with_stop_after_deliveries(4);
        let mut sim: Simulation<Beacon> = Simulation::new(config);
        for (server, coin) in coins.iter().enumerate() {
            sim.inject(Injection {
                at: 0,
                server,
                label: Label::new(1),
                request: BeaconRequest::Contribute(*coin),
            });
        }
        let outcome = sim.run();
        outcome.deliveries[0].indication.clone()
    };
    assert_eq!(run([1, 2, 3, 4]), run([1, 2, 3, 4]));
    assert_ne!(run([1, 2, 3, 4]), run([4, 3, 2, 1]));
}
